"""Tests for the content-addressed compile cache (repro.service)."""

import json

import pytest

from repro.core.pipeline import PassConfig, compile_with_config
from repro.devices import get_device
from repro.qasm import parse_qasm, to_openqasm
from repro.service import (
    CompileCache,
    CompileJob,
    CompileService,
    artifact_to_result,
    compute_key,
    device_fingerprint,
    result_to_artifact,
)
from repro.service.keys import canonical_json, canonical_qasm
from repro.workloads import random_circuit

QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
"""


@pytest.fixture
def device():
    return get_device("ibm_qx4")


class TestKeys:
    def test_key_is_deterministic(self, device):
        assert compute_key(QASM, device) == compute_key(QASM, device)

    def test_formatting_does_not_change_key(self, device):
        # Extra whitespace/comments normalise away in the canonical form.
        noisy = QASM.replace("h q[0];", "// hadamard\n  h  q[0] ;")
        assert compute_key(noisy, device) == compute_key(QASM, device)

    def test_circuit_change_changes_key(self, device):
        other = QASM.replace("h q[0];", "x q[0];")
        assert compute_key(other, device) != compute_key(QASM, device)

    def test_device_change_changes_key(self, device):
        other = get_device("ibm_qx5")
        assert compute_key(QASM, other) != compute_key(QASM, device)

    def test_config_change_changes_key(self, device):
        base = compute_key(QASM, device, PassConfig(router="sabre"))
        assert compute_key(QASM, device, PassConfig(router="astar")) != base
        assert (
            compute_key(
                QASM,
                device,
                PassConfig(router="sabre", router_options={"lookahead": 0}),
            )
            != base
        )

    def test_version_change_changes_key(self, device):
        assert compute_key(QASM, device, version="0.0.0-test") != compute_key(
            QASM, device
        )

    def test_router_option_order_is_canonical(self, device):
        a = PassConfig(router="sabre", router_options={"a": 1, "b": 2})
        b = PassConfig(router="sabre", router_options={"b": 2, "a": 1})
        assert compute_key(QASM, device, a) == compute_key(QASM, device, b)

    def test_unparsable_source_still_keys(self, device):
        key = compute_key("not qasm", device)
        assert len(key) == 64
        assert compute_key("not qasm", device) == key
        assert compute_key("also not qasm", device) != key

    def test_device_fingerprint_distinguishes_topologies(self):
        linear = get_device("linear", num_qubits=9)
        ring = get_device("ring", num_qubits=9)
        assert device_fingerprint(linear) != device_fingerprint(ring)


class TestArtifactRoundTrip:
    def test_result_survives_serialisation(self, device):
        circuit = parse_qasm(QASM)
        config = PassConfig(router="sabre")
        result = compile_with_config(circuit, device, config)
        artifact = result_to_artifact(result, config=config)
        json.dumps(artifact)  # must be plain JSON
        restored = artifact_to_result(artifact)
        assert to_openqasm(restored.native) == to_openqasm(result.native)
        assert restored.routed.added_swaps == result.routed.added_swaps
        assert restored.routed.initial.prog_to_phys() == \
            result.routed.initial.prog_to_phys()
        assert restored.routed.final.prog_to_phys() == \
            result.routed.final.prog_to_phys()
        if result.schedule is not None:
            assert restored.schedule.latency == result.schedule.latency

    def test_schema_mismatch_rejected(self, device):
        result = compile_with_config(parse_qasm(QASM), device)
        artifact = result_to_artifact(result)
        artifact["schema"] = 999
        with pytest.raises(ValueError):
            artifact_to_result(artifact)


class TestCompileCacheTiers:
    def test_memory_tier_hit(self):
        cache = CompileCache()
        cache.put("k1", {"x": 1})
        assert cache.lookup("k1") == ({"x": 1}, "memory")
        assert cache.stats()["memory_hits"] == 1

    def test_miss_counted(self):
        cache = CompileCache()
        assert cache.get("nope") is None
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = CompileCache(max_memory_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.stats()["evictions"] == 1

    def test_disk_tier_persists_across_instances(self, tmp_path):
        first = CompileCache(directory=tmp_path)
        first.put("deadbeef", {"payload": [1, 2, 3]})
        fresh = CompileCache(directory=tmp_path)
        assert fresh.lookup("deadbeef") == ({"payload": [1, 2, 3]}, "disk")
        # The disk hit was promoted into the memory tier.
        assert fresh.lookup("deadbeef") == ({"payload": [1, 2, 3]}, "memory")

    def test_last_tier_shim_removed(self):
        # The deprecated stateful accessor is gone; lookup() returns the
        # tier with the artefact instead.
        cache = CompileCache()
        cache.put("k1", {"x": 1})
        assert cache.lookup("k1") == ({"x": 1}, "memory")
        assert not hasattr(cache, "last_tier")

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        cache.put("badkey", {"fine": True})
        [path] = list(tmp_path.glob("*.json"))
        path.write_text("{not json")
        fresh = CompileCache(directory=tmp_path)
        assert fresh.get("badkey") is None
        stats = fresh.stats()
        assert stats["misses"] == 1 and stats["disk_errors"] == 1
        assert not path.exists()  # corrupt file was removed

    def test_contains_memory_and_disk_tiers(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        cache.put("k", {"v": 1})
        assert "k" in cache
        assert "other" not in cache
        fresh = CompileCache(directory=tmp_path)
        assert "k" in fresh  # disk-only entry

    def test_contains_rejects_corrupt_disk_entry(self, tmp_path):
        # Regression: __contains__ used to answer True for any existing
        # file, while get() treated an unparsable one as a miss — so
        # ``key in cache`` promised an artefact get() then refused.
        cache = CompileCache(directory=tmp_path)
        cache.put("badkey", {"fine": True})
        [path] = list(tmp_path.glob("*.json"))
        path.write_text("{not json")
        fresh = CompileCache(directory=tmp_path)
        assert "badkey" not in fresh
        assert fresh.get("badkey") is None
        assert not path.exists()  # corrupt file removed by membership test

    def test_contains_does_not_touch_hit_miss_counters(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        cache.put("k", {"v": 1})
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        assert "k" in cache
        assert "corrupt" not in cache
        assert "absent" not in cache
        stats = cache.stats()
        assert stats["memory_hits"] == 0
        assert stats["disk_hits"] == 0
        assert stats["misses"] == 0
        assert stats["disk_errors"] == 1  # the corrupt entry, counted once

    def test_concurrent_same_key_puts_leave_no_tmp_files(self, tmp_path):
        # Regression: the temp-file name used to be pid-only, so two
        # threads of one process writing the same key collided — one
        # thread's os.replace could move the file away while the other
        # still held it, leaving torn writes or orphan ``*.tmp`` files.
        import threading

        cache = CompileCache(directory=tmp_path)
        n_threads = 8
        artifacts = [
            {"writer": i, "payload": list(range(2000))} for i in range(n_threads)
        ]
        barrier = threading.Barrier(n_threads)
        errors = []

        def writer(i):
            try:
                barrier.wait()
                for _ in range(20):
                    cache.put("shared-key", artifacts[i])
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert list(tmp_path.glob("*.tmp")) == []  # no orphan temp files
        assert cache.stats()["disk_errors"] == 0
        # The final disk entry is one of the complete artefacts, untorn.
        final = json.loads((tmp_path / "shared-key.json").read_text())
        assert final in artifacts

    def test_clear(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        cache.put("k", {"v": 1})
        cache.clear(memory_only=True)
        assert len(cache) == 0
        assert cache.get("k") == {"v": 1}  # still on disk
        cache.clear()
        assert cache.get("k") is None

    def test_unwritable_cache_dir_counts_disk_error(self, tmp_path):
        # Regression: put() used to run the cache-directory mkdir
        # *outside* its try block, so a directory that cannot be created
        # raised out of put() instead of being counted like every other
        # disk failure.  A plain file squatting on the parent path makes
        # mkdir fail regardless of privileges (chmod is moot as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = CompileCache(directory=blocker / "cache")
        cache.put("k1", {"v": 1})  # must not raise
        stats = cache.stats()
        assert stats["puts"] == 1
        assert stats["disk_errors"] == 1
        # The memory tier still serves the artefact.
        assert cache.get("k1") == {"v": 1}

    def test_put_stores_copy_so_caller_mutation_is_invisible(self, tmp_path):
        # Regression: _remember used to keep the caller's dict by
        # reference, so annotating an artefact after put() silently
        # corrupted the memory tier while the disk tier kept the
        # original bytes — the two tiers answered differently.
        cache = CompileCache(directory=tmp_path)
        artifact = {"metrics": {"added_swaps": 3}, "metadata": {}}
        cache.put("alias", artifact)
        artifact["metadata"]["annotated"] = True
        artifact["metrics"]["added_swaps"] = 999

        from_memory, tier = cache.lookup("alias")
        assert tier == "memory"
        fresh = CompileCache(directory=tmp_path)
        from_disk, tier = fresh.lookup("alias")
        assert tier == "disk"
        assert from_memory == from_disk == {
            "metrics": {"added_swaps": 3}, "metadata": {},
        }


class TestCacheCorrectness:
    """Cached artefacts must be byte-identical to fresh compiles."""

    def _mini_corpus(self):
        cases = []
        for dev_name, nq, ng, seed in [
            ("ibm_qx4", 5, 15, 3),
            ("ibm_qx5", 10, 25, 7),
            ("surface17", 12, 25, 5),
        ]:
            device = get_device(dev_name)
            qasm = to_openqasm(
                random_circuit(nq, ng, seed=seed, two_qubit_fraction=0.6)
            )
            for router in ("naive", "sabre", "astar"):
                cases.append((qasm, device, PassConfig(router=router)))
        return cases

    def test_warm_artifacts_byte_identical(self, tmp_path):
        corpus = self._mini_corpus()
        expected = {}
        for i, (qasm, device, config) in enumerate(corpus):
            result = compile_with_config(parse_qasm(qasm), device, config)
            expected[i] = canonical_json(
                result_to_artifact(result, config=config)
            )

        service = CompileService(CompileCache(directory=tmp_path))
        jobs = [
            CompileJob.create(qasm, device, config, job_id=str(i))
            for i, (qasm, device, config) in enumerate(corpus)
        ]
        cold = service.submit_batch(jobs)
        assert all(r.ok and r.cache_hit is None for r in cold)

        # A brand-new service over the same directory must serve every
        # artefact from disk, byte-identical to the fresh compile.
        warm_service = CompileService(CompileCache(directory=tmp_path))
        warm = warm_service.submit_batch(jobs)
        for res in warm:
            assert res.ok and res.cache_hit == "disk"
            assert canonical_json(res.artifact) == expected[int(res.job_id)]

    def test_canonical_qasm_accepts_circuit(self):
        circuit = parse_qasm(QASM)
        assert canonical_qasm(circuit) == canonical_qasm(QASM)
