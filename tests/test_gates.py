"""Unit tests for repro.core.gates."""

import math

import numpy as np
import pytest

from repro.core import gates as G
from repro.core.gates import GATE_SPECS, Gate, canonical_name, gate_matrix


def _is_unitary(m: np.ndarray) -> bool:
    return np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=1e-10)


class TestGateSpecs:
    def test_registry_contains_paper_universal_set(self):
        for name in ("h", "x", "y", "z", "t", "cnot", "cz", "swap"):
            assert name in GATE_SPECS

    def test_every_unitary_spec_produces_unitary_matrix(self):
        for name, spec in GATE_SPECS.items():
            if spec.matrix is None:
                continue
            params = tuple(0.3 * (i + 1) for i in range(spec.num_params))
            matrix = spec.matrix(params)
            assert matrix.shape == (2**spec.num_qubits,) * 2, name
            assert _is_unitary(matrix), name

    def test_symmetric_flags(self):
        assert GATE_SPECS["cz"].symmetric
        assert GATE_SPECS["swap"].symmetric
        assert GATE_SPECS["cp"].symmetric
        assert not GATE_SPECS["cnot"].symmetric

    def test_self_inverse_flags_match_matrices(self):
        for name, spec in GATE_SPECS.items():
            if spec.matrix is None or spec.num_params:
                continue
            if spec.self_inverse:
                m = spec.matrix(())
                assert np.allclose(m @ m, np.eye(m.shape[0]), atol=1e-10), name


class TestPaperMatrices:
    """The explicit matrices printed in the paper's Section II."""

    def test_hadamard(self):
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(gate_matrix("h"), expected)

    def test_paulis(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])
        assert np.allclose(gate_matrix("y"), [[0, -1j], [1j, 0]])
        assert np.allclose(gate_matrix("z"), [[1, 0], [0, -1]])

    def test_t_gate(self):
        expected = np.diag([1, np.exp(1j * math.pi / 4)])
        assert np.allclose(gate_matrix("t"), expected)

    def test_cnot(self):
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        )
        assert np.allclose(gate_matrix("cnot"), expected)

    def test_cz(self):
        assert np.allclose(gate_matrix("cz"), np.diag([1, 1, 1, -1]))

    def test_swap(self):
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        )
        assert np.allclose(gate_matrix("swap"), expected)

    def test_u_is_euler_decomposition(self):
        """U(theta, phi, lam) = Rz(phi) Ry(theta) Rz(lam) (Section IV)."""
        theta, phi, lam = 0.7, -0.4, 2.1
        expected = (
            gate_matrix("rz", [phi])
            @ gate_matrix("ry", [theta])
            @ gate_matrix("rz", [lam])
        )
        assert np.allclose(gate_matrix("u", [theta, phi, lam]), expected)

    def test_named_90_rotations(self):
        assert np.allclose(gate_matrix("x90"), gate_matrix("rx", [math.pi / 2]))
        assert np.allclose(gate_matrix("ym90"), gate_matrix("ry", [-math.pi / 2]))


class TestAliases:
    @pytest.mark.parametrize(
        "alias,canonical",
        [("cx", "cnot"), ("ccx", "toffoli"), ("u3", "u"), ("id", "i"),
         ("cswap", "fredkin"), ("CX", "cnot"), ("H", "h")],
    )
    def test_alias_resolution(self, alias, canonical):
        assert canonical_name(alias) == canonical

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            canonical_name("frobnicate")


class TestGateInstances:
    def test_constructor_validates_arity(self):
        with pytest.raises(ValueError):
            Gate("cnot", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_constructor_validates_params(self):
        with pytest.raises(ValueError):
            Gate("rx", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0,), (0.5,))

    def test_constructor_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Gate("cnot", (1, 1))

    def test_constructor_rejects_negative_qubits(self):
        with pytest.raises(ValueError):
            Gate("h", (-1,))

    def test_constructor_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            Gate("cx", (0, 1))  # aliases must be resolved first

    def test_inverse_of_self_inverse(self):
        gate = G.cnot(0, 1)
        assert gate.inverse() == gate

    def test_inverse_of_named_pairs(self):
        assert G.t(0).inverse() == G.tdg(0)
        assert G.s(2).inverse() == G.sdg(2)
        assert G.y90(1).inverse() == G.ym90(1)

    def test_inverse_of_rotations_negates_angle(self):
        assert G.rx(0.5, 0).inverse() == G.rx(-0.5, 0)

    def test_inverse_of_u_is_correct_unitary(self):
        gate = G.u(0.7, -0.3, 1.9, 0)
        product = gate.inverse().matrix() @ gate.matrix()
        assert np.allclose(product, np.eye(2), atol=1e-10)

    def test_inverse_of_measure_raises(self):
        with pytest.raises(ValueError):
            G.measure(0).inverse()

    def test_remap(self):
        gate = G.cnot(0, 1).remap({0: 4, 1: 2})
        assert gate.qubits == (4, 2)

    def test_reversed_qubits(self):
        assert G.cz(1, 3).reversed_qubits().qubits == (3, 1)

    def test_str_formats(self):
        assert str(G.cnot(0, 1)) == "cnot q0, q1"
        assert "rx(0.5)" in str(G.rx(0.5, 2))

    def test_flags(self):
        assert G.measure(0).is_measurement
        assert not G.measure(0).is_unitary
        assert G.barrier().is_barrier
        assert G.cz(0, 1).is_symmetric
        assert G.cnot(0, 1).is_two_qubit
        assert not G.measure(0).is_two_qubit

    def test_matrix_of_nonunitary_raises(self):
        with pytest.raises(ValueError):
            G.barrier(0).matrix()

    def test_matrix_basis_convention_first_qubit_msb(self):
        # CNOT with control=qubit0 flips qubit1 when qubit0 (MSB) is 1:
        # |10> -> |11>, i.e. column 2 has a one in row 3.
        m = G.cnot(0, 1).matrix()
        assert m[3, 2] == 1 and m[2, 3] == 1

    def test_gate_is_hashable_value_object(self):
        assert G.h(0) == G.h(0)
        assert len({G.h(0), G.h(0), G.h(1)}) == 2
