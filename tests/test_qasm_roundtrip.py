"""QASM writer/parser round-trip stability across the workload corpus.

The service layer's cache keys rely on ``to_openqasm(parse_qasm(text))``
being a *normal form*: parsing a written circuit and writing it again
must be a fixed point, otherwise semantically identical requests would
hash to different keys.  These tests pin that property across every
workload family plus the device-specific gate sets.
"""

import pytest

from repro.core import Circuit, Gate
from repro.qasm import parse_qasm, to_openqasm
from repro.workloads import WORKLOADS, random_circuit
from repro.workloads.paper import fig1_circuit, fig2_circuit


def _circuits_equal(a: Circuit, b: Circuit) -> bool:
    if a.num_qubits != b.num_qubits or len(a.gates) != len(b.gates):
        return False
    for ga, gb in zip(a.gates, b.gates):
        if (ga.name, ga.qubits, ga.params, ga.condition) != (
            gb.name, gb.qubits, gb.params, gb.condition
        ):
            return False
    return True


def _assert_roundtrip_stable(circuit: Circuit) -> None:
    once = parse_qasm(to_openqasm(circuit))
    twice = parse_qasm(to_openqasm(once))
    assert _circuits_equal(once, twice)
    # The canonical text itself is a fixed point too.
    assert to_openqasm(once) == to_openqasm(twice)


class TestWorkloadCorpus:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_roundtrip(self, name):
        _assert_roundtrip_stable(WORKLOADS[name]())

    @pytest.mark.parametrize("seed", [0, 1, 7, 11])
    def test_random_circuit_roundtrip(self, seed):
        _assert_roundtrip_stable(
            random_circuit(8, 40, seed=seed, two_qubit_fraction=0.6)
        )

    def test_paper_figures_roundtrip(self):
        _assert_roundtrip_stable(fig1_circuit())
        _assert_roundtrip_stable(fig2_circuit())


class TestNativeGateSets:
    def test_surface17_native_gates_roundtrip(self):
        # x90/y90/ym90 etc. come out of the surface-17 decomposition;
        # the parser must accept everything the writer can emit.
        circuit = Circuit(3)
        circuit.append(Gate("x90", (0,)))
        circuit.append(Gate("xm90", (1,)))
        circuit.append(Gate("y90", (2,)))
        circuit.append(Gate("ym90", (0,)))
        circuit.cz(0, 1)
        _assert_roundtrip_stable(circuit)

    def test_iontrap_gates_roundtrip(self):
        circuit = Circuit(2)
        circuit.append(Gate("rxx", (0, 1), params=(0.5,)))
        _assert_roundtrip_stable(circuit)

    def test_measurement_and_condition_roundtrip(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        _assert_roundtrip_stable(circuit)
