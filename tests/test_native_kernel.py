"""Large-device tests for the multi-word native routing kernels.

The original C kernel packed one search state into a single 64-bit word,
refusing any device with more than 64 qubits (or edges).  These tests
pin the lifted cap: fixed-seed circuits on 80-119-qubit grid and
heavy-hex devices must (a) actually take the native path — asserted via
``kernel_stats()`` counter deltas, not just availability — and (b)
produce byte-identical output to the pure-Python reference kernels.

The Python reference is obtained in-process by monkeypatching the native
entry points to report "unavailable", which exercises the exact fallback
path ``REPRO_NO_NATIVE=1`` takes.
"""

import pytest

from repro.devices import grid_device, heavy_hex_device, linear_device
from repro.mapping.routing import _astar_impl, route_astar, route_sabre
from repro.mapping.routing import astar as astar_mod
from repro.mapping.routing import sabre as sabre_mod
from repro.mapping.routing._astar_native import kernel_stats, warm_kernel
from repro.perf.bench import fingerprint
from repro.workloads import random_circuit

pytestmark = pytest.mark.skipif(
    not warm_kernel(),
    reason="native kernel unavailable (no C compiler or REPRO_NO_NATIVE=1)",
)

#: The large-corpus instances (same seeds as repro.perf.baseline) plus
#: the old cap boundary: 64 qubits (the single-word maximum) and 65 (the
#: first size the old kernel refused).
LARGE_CASES = [
    pytest.param(lambda: grid_device(8, 10), 12, 40, 21, id="grid8x10"),
    pytest.param(lambda: grid_device(10, 10), 12, 40, 9, id="grid10x10"),
    pytest.param(lambda: heavy_hex_device(7, 14), 12, 30, 17, id="heavyhex119"),
    pytest.param(lambda: linear_device(64), 10, 30, 4, id="linear64-boundary"),
    pytest.param(lambda: linear_device(65), 10, 30, 4, id="linear65-boundary"),
]


def _circuit(nq, ng, seed):
    return random_circuit(nq, ng, seed=seed, two_qubit_fraction=0.6)


def _python_reference(monkeypatch, route, circuit, device):
    """Route with every native entry point disabled (pure-Python path)."""
    with monkeypatch.context() as m:
        m.setattr(_astar_impl, "solve_layer_native", lambda *a, **k: None)
        m.setattr(astar_mod, "solve_layers_batch_native", lambda *a, **k: None)
        m.setattr(sabre_mod, "dist_buffer", lambda *a, **k: None)
        return route(circuit, device)


class TestLargeDeviceAStar:
    @pytest.mark.parametrize("factory,nq,ng,seed", LARGE_CASES)
    def test_native_path_used_and_byte_identical(
        self, monkeypatch, factory, nq, ng, seed
    ):
        device = factory()
        circuit = _circuit(nq, ng, seed)

        before = kernel_stats()
        native = route_astar(circuit, device)
        after = kernel_stats()

        # The native kernel must really have routed the layers: the
        # counters move, proving this was not a silent Python fallback.
        assert after["native_layers"] > before["native_layers"]
        assert after["python_layers"] == before["python_layers"]
        assert after["batch_calls"] == before["batch_calls"] + 1

        reference = _python_reference(monkeypatch, route_astar, circuit, device)
        assert native.added_swaps == reference.added_swaps
        assert fingerprint(native.circuit) == fingerprint(reference.circuit)
        assert native.final.key() == reference.final.key()


class TestLargeDeviceSabre:
    @pytest.mark.parametrize("factory,nq,ng,seed", LARGE_CASES)
    def test_native_scorer_used_and_byte_identical(
        self, monkeypatch, factory, nq, ng, seed
    ):
        device = factory()
        circuit = _circuit(nq, ng, seed)

        before = kernel_stats()
        native = route_sabre(circuit, device)
        after = kernel_stats()

        assert after["sabre_native_calls"] > before["sabre_native_calls"]
        assert after["sabre_python_calls"] == before["sabre_python_calls"]

        reference = _python_reference(monkeypatch, route_sabre, circuit, device)
        assert native.added_swaps == reference.added_swaps
        assert fingerprint(native.circuit) == fingerprint(reference.circuit)
        assert native.final.key() == reference.final.key()


class TestCapBoundary:
    def test_linear_64_and_65_route_identically(self):
        # 64 qubits was the single-word kernel's hard cap; 65 the first
        # refusal.  A chain one qubit longer must not change the routed
        # output of the same 10-qubit program (the extra qubit is idle),
        # and both sizes must go native.
        circuit = _circuit(10, 30, 4)
        results = {}
        for n in (64, 65):
            before = kernel_stats()
            routed = route_astar(circuit, linear_device(n))
            after = kernel_stats()
            assert after["native_layers"] > before["native_layers"], n
            results[n] = (routed.added_swaps, fingerprint(routed.circuit))
        assert results[64] == results[65]
