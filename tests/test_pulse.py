"""Tests for pulse-level lowering (the control signals of Fig. 2)."""

import pytest

from repro.core import Circuit
from repro.core.gates import Gate
from repro.devices import ControlConstraints, Device, ibm_qx4, surface17
from repro.mapping.control import schedule_with_constraints
from repro.mapping.scheduler import Schedule, ScheduledGate, asap_schedule
from repro.pulse import Channel, PulseProgram, lower_to_pulses


def _chip():
    return Device(
        "chip3",
        3,
        [(0, 1), (0, 2)],
        ["x", "y", "rx", "ry", "cz"],
        two_qubit_gate="cz",
        durations={"x": 1, "y": 1, "cz": 2, "measure": 5},
        constraints=ControlConstraints(
            frequency_group={0: 0, 1: 1, 2: 1},
            feedline={0: 0, 1: 0, 2: 0},
        ),
    )


class TestChannelAssignment:
    def test_awg_channel_per_frequency_group(self):
        device = _chip()
        schedule = asap_schedule(Circuit(3).x(0).x(1), device)
        program = lower_to_pulses(schedule, device)
        kinds = {str(e.channel) for e in program}
        assert kinds == {"awg[0]", "awg[1]"}

    def test_drive_channel_without_groups(self, qx4):
        circuit = Circuit(2).u(0.1, 0.2, 0.3, 0).u(0.1, 0.2, 0.3, 1)
        program = lower_to_pulses(asap_schedule(circuit, qx4), qx4)
        assert {str(e.channel) for e in program} == {"drive[0]", "drive[1]"}

    def test_flux_channel_per_edge(self):
        device = _chip()
        circuit = Circuit(3).cz(0, 1).cz(0, 2)
        program = lower_to_pulses(asap_schedule(circuit, device), device)
        flux = {str(e.channel) for e in program if e.channel.kind == "flux"}
        assert flux == {"flux[0,1]", "flux[0,2]"}

    def test_readout_channel_per_feedline(self):
        device = _chip()
        schedule = schedule_with_constraints(
            Circuit(3).measure(1).measure(2), device
        )
        program = lower_to_pulses(schedule, device)
        readout = [e for e in program if e.channel.kind == "readout"]
        assert len(readout) == 1  # co-started measurements share the tone
        assert readout[0].qubits == (1, 2)


class TestAwgMerging:
    def test_identical_co_started_gates_merge(self):
        device = _chip()
        schedule = schedule_with_constraints(Circuit(3).x(1).x(2), device)
        program = lower_to_pulses(schedule, device)
        awg1 = [e for e in program if e.channel == Channel("awg", (1,))]
        assert len(awg1) == 1
        assert awg1[0].qubits == (1, 2)

    def test_different_gates_do_not_merge(self):
        device = _chip()
        schedule = schedule_with_constraints(Circuit(3).x(1).y(2), device)
        program = lower_to_pulses(schedule, device)
        awg1 = [e for e in program if e.channel == Channel("awg", (1,))]
        assert len(awg1) == 2
        assert {e.start for e in awg1} == {0, 1}  # serialised by the AWG

    def test_awg_violating_schedule_rejected(self):
        device = _chip()
        # Hand-build an invalid schedule: x and y co-starting in group 1.
        bad = Schedule(
            [
                ScheduledGate(Gate("x", (1,)), 0, 1),
                ScheduledGate(Gate("y", (2,)), 0, 1),
            ],
            3,
            device.cycle_time_ns,
        )
        with pytest.raises(ValueError, match="control-channel"):
            lower_to_pulses(bad, device)


class TestProgramProperties:
    def test_latency_matches_schedule(self, s17):
        from repro.mapping import qmap
        from repro.workloads import fig1_circuit

        result = qmap(fig1_circuit(), s17)
        program = lower_to_pulses(result.schedule, s17)
        assert program.latency == result.schedule.latency

    def test_validate_clean_on_constraint_schedules(self, s17):
        from repro.decompose import decompose_circuit
        from repro.mapping.routing import route
        from repro.workloads import random_circuit

        circuit = random_circuit(5, 18, seed=4)
        routed = route(circuit, s17, "sabre").circuit
        native = decompose_circuit(routed, s17)
        schedule = schedule_with_constraints(native, s17)
        program = lower_to_pulses(schedule, s17)
        assert program.validate() == []

    def test_feedforward_marked(self):
        device = _chip()
        circuit = Circuit(3)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        schedule = schedule_with_constraints(circuit, device)
        program = lower_to_pulses(schedule, device)
        conditioned = [e for e in program if e.feedforward]
        assert len(conditioned) == 1
        assert conditioned[0].label == "x"

    def test_timeline_renders_all_channels(self):
        device = _chip()
        schedule = asap_schedule(Circuit(3).x(0).cz(0, 1), device)
        program = lower_to_pulses(schedule, device)
        text = program.timeline()
        assert "awg[0]" in text and "flux[0,1]" in text
        assert "#" in text

    def test_events_on_sorted(self):
        device = _chip()
        circuit = Circuit(3).x(0).y(0).x(0)
        program = lower_to_pulses(asap_schedule(circuit, device), device)
        starts = [e.start for e in program.events_on(Channel("awg", (0,)))]
        assert starts == sorted(starts)

    def test_barriers_produce_no_pulses(self):
        device = _chip()
        program = lower_to_pulses(
            asap_schedule(Circuit(3).barrier().x(0), device), device
        )
        assert len(program) == 1

    def test_init_uses_readout_path(self):
        device = _chip()
        program = lower_to_pulses(
            asap_schedule(Circuit(3).prep_z(0), device), device
        )
        assert program.events[0].channel.kind == "readout"
        assert program.events[0].label == "init"
