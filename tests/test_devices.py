"""Unit tests for repro.devices.device (the machine description)."""

import json

import pytest

from repro.core import Circuit
from repro.core.gates import Gate
from repro.devices import ControlConstraints, Device, get_device, available_devices


def _toy_device(symmetric=True):
    return Device(
        "toy",
        3,
        [(0, 1), (1, 2)],
        ["h", "t", "cnot"],
        symmetric=symmetric,
        durations={"h": 1, "cnot": 2},
    )


class TestGraphStructure:
    def test_symmetric_edges_doubled(self):
        device = _toy_device()
        assert (0, 1) in device.edges and (1, 0) in device.edges

    def test_asymmetric_edges_kept_directed(self):
        device = Device("d", 2, [(0, 1)], ["cnot"], symmetric=False)
        assert device.has_edge(0, 1) and not device.has_edge(1, 0)
        assert device.connected(1, 0)

    def test_invalid_edge_rejected(self):
        with pytest.raises(ValueError):
            Device("d", 2, [(0, 2)], ["cnot"])
        with pytest.raises(ValueError):
            Device("d", 2, [(0, 0)], ["cnot"])

    def test_distance_matrix(self):
        device = _toy_device()
        assert device.distance(0, 0) == 0
        assert device.distance(0, 1) == 1
        assert device.distance(0, 2) == 2

    def test_distance_on_disconnected_chip_is_sentinel(self):
        device = Device("d", 3, [(0, 1)], ["cnot"])
        assert device.distance(0, 2) >= 9

    def test_neighbours(self):
        device = _toy_device()
        assert device.neighbours[1] == (0, 2)

    def test_shortest_path(self):
        device = _toy_device()
        assert device.shortest_path(0, 2) == [0, 1, 2]

    def test_undirected_edges_unique(self):
        device = _toy_device()
        assert device.undirected_edges() == [(0, 1), (1, 2)]

    def test_shortest_path_disconnected_raises_named_qubits(self):
        # Regression guard: networkx's NetworkXNoPath must not leak out
        # of the Device API; routers and CLI surface this as their own
        # typed errors.
        device = Device("split", 4, [(0, 1), (2, 3)], ["cnot"])
        with pytest.raises(ValueError, match=r"qubits 0 and 3.*'split'"):
            device.shortest_path(0, 3)
        # Connected queries on the same instance still work.
        assert device.shortest_path(2, 3) == [2, 3]

    def test_shortest_path_cache_is_per_instance(self):
        # Regression guard: shortest_path memoises on (a, b) only, so a
        # cache shared between instances would let a 9-qubit line serve
        # a 9-qubit ring's queries (or vice versa). Same size, same
        # endpoints, different topology -> different answers required.
        linear = get_device("linear", num_qubits=9)
        ring = get_device("ring", num_qubits=9)
        assert linear.shortest_path(0, 8) == list(range(9))
        assert ring.shortest_path(0, 8) == [0, 8]
        # And in the opposite query order on fresh instances.
        ring2 = get_device("ring", num_qubits=9)
        linear2 = get_device("linear", num_qubits=9)
        assert ring2.shortest_path(0, 8) == [0, 8]
        assert linear2.shortest_path(0, 8) == list(range(9))


class TestGateAdmissibility:
    def test_native_one_qubit(self):
        device = _toy_device()
        assert device.allows(Gate("h", (0,)))
        assert not device.allows(Gate("x", (0,)))

    def test_measure_prep_barrier_always_allowed(self):
        device = _toy_device()
        assert device.allows(Gate("measure", (0,)))
        assert device.allows(Gate("prep_z", (1,)))
        assert device.allows(Gate("barrier", ()))

    def test_connectivity_enforced(self):
        device = _toy_device()
        assert device.allows(Gate("cnot", (0, 1)))
        assert not device.allows(Gate("cnot", (0, 2)))
        assert "not connected" in device.violation(Gate("cnot", (0, 2)))

    def test_direction_enforced_on_asymmetric(self):
        device = Device("d", 2, [(0, 1)], ["cnot"], symmetric=False)
        assert device.allows(Gate("cnot", (0, 1)))
        assert not device.allows(Gate("cnot", (1, 0)))
        assert "direction" in device.violation(Gate("cnot", (1, 0)))

    def test_symmetric_gate_ignores_direction(self):
        device = Device("d", 2, [(0, 1)], ["cz"], symmetric=False, two_qubit_gate="cz")
        assert device.allows(Gate("cz", (1, 0)))

    def test_multi_qubit_gates_rejected(self):
        device = Device("d", 3, [(0, 1), (1, 2)], ["toffoli", "cnot"])
        assert not device.allows(Gate("toffoli", (0, 1, 2)))

    def test_validate_circuit_reports_everything(self):
        device = _toy_device()
        circuit = Circuit(3).x(0).cnot(0, 2)
        problems = device.validate_circuit(circuit)
        assert len(problems) == 2
        assert problems[0].gate_index == 0

    def test_validate_circuit_size(self):
        device = _toy_device()
        problems = device.validate_circuit(Circuit(4))
        assert problems and "4 qubits" in problems[0].reason

    def test_conforms(self):
        device = _toy_device()
        assert device.conforms(Circuit(2).h(0).cnot(0, 1))


class TestDurations:
    def test_explicit_duration(self):
        device = _toy_device()
        assert device.duration("cnot") == 2
        assert device.duration(Gate("h", (0,))) == 1

    def test_default_duration(self):
        assert _toy_device().duration("t") == 1

    def test_duration_ns(self):
        device = _toy_device()
        assert device.duration_ns("cnot") == 2 * device.cycle_time_ns


class TestControlConstraints:
    def test_same_awg(self):
        constraints = ControlConstraints(frequency_group={0: 0, 1: 0, 2: 1})
        assert constraints.same_awg(0, 1)
        assert not constraints.same_awg(0, 2)
        assert not constraints.same_awg(0, 5)  # unknown qubit

    def test_same_feedline(self):
        constraints = ControlConstraints(feedline={0: 0, 1: 0, 2: 1})
        assert constraints.same_feedline(0, 1)
        assert not constraints.same_feedline(1, 2)

    def test_parked_qubits_spectators_of_detuned(self):
        # 0 (f1) -- 1 (f2); 0 also neighbours 2 (f2) and 3 (f1).
        constraints = ControlConstraints(
            frequency_group={0: 0, 1: 1, 2: 1, 3: 0}
        )
        neighbours = {0: (1, 2, 3), 1: (0,), 2: (0,), 3: (0,)}
        parked = constraints.parked_qubits(0, 1, neighbours)
        # 0 detunes to f2; spectator 2 sits at f2 -> parked; 3 at f1 -> safe.
        assert parked == {2}

    def test_parked_qubits_disabled(self):
        constraints = ControlConstraints(
            frequency_group={0: 0, 1: 1, 2: 1}, park_on_cz=False
        )
        assert constraints.parked_qubits(0, 1, {0: (1, 2)}) == set()

    def test_same_frequency_pair_parks_nothing(self):
        constraints = ControlConstraints(frequency_group={0: 1, 1: 1, 2: 1})
        assert constraints.parked_qubits(0, 1, {0: (1, 2)}) == set()


class TestSerialisation:
    def test_roundtrip_preserves_structure(self, s17):
        text = s17.to_json()
        restored = Device.from_json(text)
        assert restored.num_qubits == s17.num_qubits
        assert restored.edges == s17.edges
        assert restored.native_gates == s17.native_gates
        assert restored.symmetric == s17.symmetric
        assert restored.durations == s17.durations
        assert restored.constraints.frequency_group == dict(
            s17.constraints.frequency_group
        )
        assert restored.constraints.feedline == dict(s17.constraints.feedline)

    def test_roundtrip_directed(self, qx4):
        restored = Device.from_dict(qx4.to_dict())
        assert restored.symmetric is False
        assert restored.has_edge(1, 0) and not restored.has_edge(0, 1)

    def test_json_file_roundtrip(self, tmp_path, qx4):
        path = tmp_path / "qx4.json"
        qx4.to_json(path)
        restored = Device.from_json(path)
        assert restored.edges == qx4.edges

    def test_dict_is_json_serialisable(self, s17):
        json.dumps(s17.to_dict())

    def test_from_dict_expands_single_listed_symmetric_edges(self):
        # Regression: a hand-written config lists each connection once
        # and says symmetric: true; from_dict used to keep the edge set
        # as-listed, producing a device that claimed symmetry but only
        # had one orientation of each edge.
        device = Device.from_dict(
            {
                "name": "hand",
                "num_qubits": 3,
                "edges": [[0, 1], [1, 2]],
                "native_gates": ["h", "cnot"],
                "symmetric": True,
            }
        )
        assert device.symmetric is True
        assert device.has_edge(0, 1) and device.has_edge(1, 0)
        assert device.has_edge(1, 2) and device.has_edge(2, 1)
        # The expansion reaches the routing-facing graph views too.
        assert (1, 0) in device.edges and (2, 1) in device.edges

    @pytest.mark.parametrize("fixture", ["qx4", "s17"])
    def test_to_dict_from_dict_to_dict_fixed_point(self, fixture, request):
        # Serialisation must be idempotent: re-expanding an already
        # expanded edge list cannot change the dictionary.
        first = request.getfixturevalue(fixture).to_dict()
        second = Device.from_dict(first).to_dict()
        assert second == first

    def test_fixed_point_from_hand_written_config(self):
        hand = {
            "name": "hand",
            "num_qubits": 3,
            "edges": [[0, 1], [1, 2]],
            "native_gates": ["h", "cnot"],
            "symmetric": True,
        }
        first = Device.from_dict(hand).to_dict()
        second = Device.from_dict(first).to_dict()
        assert second == first


class TestRegistry:
    def test_available_devices(self):
        names = available_devices()
        for expected in ("ibm_qx4", "ibm_qx5", "surface17", "surface7", "grid"):
            assert expected in names

    def test_get_fixed_device(self):
        assert get_device("ibm_qx4").num_qubits == 5
        assert get_device("surface17").num_qubits == 17

    def test_fixed_device_rejects_params(self):
        with pytest.raises(TypeError):
            get_device("ibm_qx4", rows=2)

    def test_parametric_devices(self):
        assert get_device("linear", num_qubits=7).num_qubits == 7
        assert get_device("ring", num_qubits=6).undirected.degree(0) == 2
        assert get_device("grid", rows=2, cols=3).num_qubits == 6
        ions = get_device("all_to_all", num_qubits=4)
        assert len(ions.undirected_edges()) == 6

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("sycamore")

    def test_repr(self, qx4):
        assert "ibm_qx4" in repr(qx4)
