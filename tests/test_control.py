"""Tests for the control-constraint-aware scheduler (Section V)."""

import pytest

from repro.core import Circuit
from repro.devices import ControlConstraints, Device
from repro.mapping.control import schedule_with_constraints
from repro.mapping.scheduler import asap_schedule


def _chip():
    """3-qubit line; qubit 0 at f1, qubits 1 and 2 share f2 and one AWG.

    All three share a measurement feedline.  Edges: 0-1 and 0-2, so a CZ
    on (0, 1) detunes qubit 0 down to f2 where spectator qubit 2 sits.
    """
    return Device(
        "chip3",
        3,
        [(0, 1), (0, 2)],
        ["x", "y", "rx", "ry", "x90", "xm90", "y90", "ym90", "cz"],
        symmetric=True,
        two_qubit_gate="cz",
        durations={"x": 1, "y": 1, "cz": 2, "measure": 5},
        constraints=ControlConstraints(
            frequency_group={0: 0, 1: 1, 2: 1},
            feedline={0: 0, 1: 0, 2: 0},
            park_on_cz=True,
        ),
    )


def _start(schedule, name, qubit):
    return next(
        item.start
        for item in schedule
        if item.gate.name == name and item.gate.qubits == (qubit,)
    )


class TestAwgSharing:
    def test_same_gate_same_group_co_starts(self):
        schedule = schedule_with_constraints(Circuit(3).x(1).x(2), _chip())
        assert schedule.latency == 1

    def test_different_gates_same_group_serialise(self):
        schedule = schedule_with_constraints(Circuit(3).x(1).y(2), _chip())
        assert schedule.latency == 2

    def test_different_groups_parallel(self):
        schedule = schedule_with_constraints(Circuit(3).x(0).y(1), _chip())
        assert schedule.latency == 1

    def test_awg_disabled_restores_parallelism(self):
        schedule = schedule_with_constraints(
            Circuit(3).x(1).y(2), _chip(), awg=False
        )
        assert schedule.latency == 1

    def test_same_gate_different_params_conflict(self):
        circuit = Circuit(3).rx(0.5, 1).rx(0.7, 2)
        schedule = schedule_with_constraints(circuit, _chip())
        assert schedule.latency == 2

    def test_same_gate_same_params_co_start(self):
        circuit = Circuit(3).rx(0.5, 1).rx(0.5, 2)
        schedule = schedule_with_constraints(circuit, _chip())
        assert schedule.latency == 1


class TestFeedlines:
    def test_measurements_co_start(self):
        circuit = Circuit(3).measure(1).measure(2)
        schedule = schedule_with_constraints(circuit, _chip())
        assert schedule.latency == 5

    def test_measurement_cannot_start_mid_flight(self):
        # x delays the measurement of qubit 0 by one cycle; by then the
        # feedline is busy with qubit 1, so it must wait for completion.
        circuit = Circuit(3).x(0).measure(1).measure(0)
        schedule = schedule_with_constraints(circuit, _chip())
        m0 = next(
            item for item in schedule
            if item.gate.is_measurement and item.gate.qubits == (0,)
        )
        assert m0.start == 5
        assert schedule.latency == 10

    def test_feedlines_disabled(self):
        circuit = Circuit(3).x(0).measure(1).measure(0)
        schedule = schedule_with_constraints(circuit, _chip(), feedlines=False)
        assert schedule.latency == 6


class TestParking:
    def test_spectator_parked_during_cz(self):
        circuit = Circuit(3).cz(0, 1).x(2)
        schedule = schedule_with_constraints(circuit, _chip())
        assert _start(schedule, "x", 2) == 2  # waits out the CZ

    def test_parking_disabled(self):
        circuit = Circuit(3).cz(0, 1).x(2)
        schedule = schedule_with_constraints(circuit, _chip(), parking=False)
        assert _start(schedule, "x", 2) == 0

    def test_cz_waits_for_busy_spectator(self):
        # Qubit 2 is busy at cycle 0, so the CZ (which would park it)
        # must wait until it is free.
        circuit = Circuit(3).x(2).cz(0, 1)
        schedule = schedule_with_constraints(circuit, _chip())
        cz = next(item for item in schedule if item.gate.name == "cz")
        assert cz.start == 1

    def test_same_frequency_cz_parks_nothing(self):
        device = Device(
            "flat",
            3,
            [(0, 1), (0, 2)],
            ["x", "cz"],
            two_qubit_gate="cz",
            durations={"x": 1, "cz": 2},
            constraints=ControlConstraints(frequency_group={0: 0, 1: 0, 2: 0}),
        )
        circuit = Circuit(3).cz(0, 1).x(2)
        schedule = schedule_with_constraints(circuit, device)
        assert _start(schedule, "x", 2) == 0


class TestGeneralBehaviour:
    def test_matches_asap_without_constraints(self, s17):
        circuit = Circuit(3).x(0).cz(0, 1).y(1).cz(1, 2)
        relaxed = schedule_with_constraints(
            circuit, s17, awg=False, feedlines=False, parking=False
        )
        assert relaxed.latency == asap_schedule(circuit, s17).latency

    def test_constraints_never_reduce_latency(self, s17):
        from repro.workloads import random_circuit
        from repro.decompose import decompose_circuit
        from repro.mapping.routing import route

        for seed in range(3):
            circuit = random_circuit(5, 12, seed=seed)
            routed = route(circuit, s17, "sabre").circuit
            native = decompose_circuit(routed, s17)
            free = schedule_with_constraints(
                native, s17, awg=False, feedlines=False, parking=False
            )
            constrained = schedule_with_constraints(native, s17)
            assert constrained.latency >= free.latency

    def test_all_gates_scheduled_once(self):
        circuit = Circuit(3).x(0).cz(0, 1).y(1).x(2).measure(0)
        schedule = schedule_with_constraints(circuit, _chip())
        assert len(schedule) == len(circuit.gates)
        assert schedule.validate() == []

    def test_dependencies_respected(self):
        circuit = Circuit(3).x(0).cz(0, 1).y(1)
        schedule = schedule_with_constraints(circuit, _chip())
        x = _start(schedule, "x", 0)
        cz = next(item for item in schedule if item.gate.name == "cz").start
        y = _start(schedule, "y", 1)
        assert x < cz < y
        assert cz >= 1 and y >= cz + 2

    def test_dependency_waits_for_full_duration(self):
        circuit = Circuit(3).cz(0, 1).x(1)
        schedule = schedule_with_constraints(circuit, _chip())
        assert _start(schedule, "x", 1) == 2

    def test_barrier_handled(self):
        circuit = Circuit(3).x(0).barrier().x(1)
        schedule = schedule_with_constraints(circuit, _chip())
        assert _start(schedule, "x", 1) >= 1


class TestCriticalPriority:
    def test_unknown_priority_rejected(self, s17):
        with pytest.raises(ValueError):
            schedule_with_constraints(Circuit(1), s17, priority="vibes")

    def test_critical_schedules_are_valid(self, s17):
        from repro.decompose import decompose_circuit
        from repro.mapping.routing import route
        from repro.workloads import random_circuit

        circuit = random_circuit(6, 20, seed=7, two_qubit_fraction=0.5)
        native = decompose_circuit(route(circuit, s17, "sabre").circuit, s17)
        schedule = schedule_with_constraints(native, s17, priority="critical")
        assert schedule.validate() == []
        assert len(schedule) == len(native.gates)

    def test_critical_not_worse_in_aggregate(self, s17):
        from repro.decompose import decompose_circuit
        from repro.mapping.routing import route
        from repro.workloads import random_circuit

        order_total = critical_total = 0
        for seed in range(4):
            circuit = random_circuit(6, 22, seed=seed, two_qubit_fraction=0.5)
            native = decompose_circuit(
                route(circuit, s17, "sabre").circuit, s17
            )
            order_total += schedule_with_constraints(native, s17).latency
            critical_total += schedule_with_constraints(
                native, s17, priority="critical"
            ).latency
        assert critical_total <= order_total

    def test_prefers_long_tail_gate(self):
        # Qubit 0's x starts a long chain; qubit 1's y is a dead end.
        # Both share the AWG group in _chip()?  Use group conflict: x(1)
        # and y(2) conflict; with 'critical', whichever unlocks the CZ
        # chain goes first.
        device = _chip()
        circuit = Circuit(3).y(2).x(1).cz(0, 1).cz(0, 1).cz(0, 1)
        ordered = schedule_with_constraints(circuit, device)
        critical = schedule_with_constraints(circuit, device, priority="critical")
        assert critical.latency <= ordered.latency
        x_start = _start(critical, "x", 1)
        y_start = _start(critical, "y", 2)
        assert x_start < y_start  # the chain head wins the AWG
