"""Integration tests for the full compilation pipeline (Fig. 2 flow)."""

import pytest

from repro.core import Circuit
from repro.core.pipeline import compile_circuit
from repro.devices import get_device
from repro.verify import equivalent_mapped
from repro.workloads import ghz, qft, random_circuit

DEVICES = ["ibm_qx4", "surface17", "surface7"]
ROUTERS = ["naive", "sabre", "astar", "latency"]


class TestEndToEnd:
    @pytest.mark.parametrize("device_name", DEVICES)
    @pytest.mark.parametrize("router", ROUTERS)
    def test_random_circuits_conform_and_stay_equivalent(self, device_name, router):
        device = get_device(device_name)
        n = min(device.num_qubits, 5)
        circuit = random_circuit(n, 14, seed=hash((device_name, router)) % 1000)
        result = compile_circuit(circuit, device, router=router, placer="greedy")
        assert device.conforms(result.native), device.validate_circuit(result.native)[:3]
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )

    def test_multi_qubit_gates_are_predecomposed(self, qx4):
        circuit = Circuit(3).toffoli(0, 1, 2)
        result = compile_circuit(circuit, qx4)
        assert qx4.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )

    def test_qft_compiles_everywhere(self):
        circuit = qft(4)
        for device_name in DEVICES:
            device = get_device(device_name)
            result = compile_circuit(circuit, device, placer="greedy", router="sabre")
            assert device.conforms(result.native)


class TestOptions:
    def test_decompose_false_keeps_swaps(self, s17, ghz3):
        result = compile_circuit(ghz3, s17, decompose=False, schedule=None)
        assert result.native is result.routed.circuit

    def test_schedule_none(self, s17, ghz3):
        result = compile_circuit(ghz3, s17, schedule=None)
        assert result.schedule is None
        assert result.latency == 0

    def test_schedule_modes(self, s17, ghz3):
        asap = compile_circuit(ghz3, s17, schedule="asap")
        alap = compile_circuit(ghz3, s17, schedule="alap")
        constrained = compile_circuit(ghz3, s17, schedule="constraints")
        assert asap.latency == alap.latency
        assert constrained.latency >= asap.latency

    def test_unknown_schedule_mode(self, s17, ghz3):
        with pytest.raises(ValueError):
            compile_circuit(ghz3, s17, schedule="magic")

    def test_callable_placer(self, s17, ghz3):
        from repro.mapping.placement import trivial_placement

        result = compile_circuit(ghz3, s17, placer=trivial_placement)
        assert result.placer == "trivial_placement"

    def test_router_options_forwarded(self, s17, ghz3):
        result = compile_circuit(
            ghz3, s17, router="sabre", router_options={"lookahead": 3}
        )
        assert result.routed.metadata["lookahead"] == 3

    def test_control_constraints_flag(self, s17):
        circuit = ghz(4)
        on = compile_circuit(circuit, s17, schedule="constraints")
        off = compile_circuit(
            circuit, s17, schedule="constraints", control_constraints=False
        )
        assert on.latency >= off.latency


class TestResultMetrics:
    def test_summary_text(self, qx4, ghz3):
        result = compile_circuit(ghz3, qx4)
        text = result.summary()
        assert "ibm_qx4" in text and "SWAP" in text

    def test_gate_overhead_nonnegative_after_lowering(self, qx4):
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2)
        result = compile_circuit(circuit, qx4, placer="trivial")
        assert result.gate_overhead >= 0

    def test_depth_ratio(self, qx4, ghz3):
        result = compile_circuit(ghz3, qx4)
        assert result.depth_ratio > 0

    def test_added_swaps_matches_routed(self, s17):
        circuit = random_circuit(5, 15, seed=9)
        result = compile_circuit(circuit, s17, placer="trivial", router="naive")
        assert result.added_swaps == result.routed.added_swaps

    def test_measured_circuit_compiles(self, s17):
        circuit = Circuit(3).h(0).cnot(0, 1).measure_all()
        result = compile_circuit(circuit, s17, schedule="constraints")
        assert result.native.count("measure") == 3
        assert result.schedule.validate() == []
