"""Tests for the HTTP/JSON gateway front end (repro.service.httpd)."""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.devices import get_device
from repro.qasm import to_openqasm
from repro.service import (
    AsyncCompileService,
    CompileCache,
    CompileService,
    GatewayServer,
)
from repro.workloads import random_circuit


def _qasm(seed=1):
    return to_openqasm(
        random_circuit(5, 12, seed=seed, two_qubit_fraction=0.6)
    )


class _Client:
    """Tiny urllib JSON client against one GatewayServer."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method, path, body=None, timeout=60):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read()), resp.headers
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), exc.headers

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body):
        return self.request("POST", path, body)


@pytest.fixture
def stack():
    """A running (service, gateway, server, client) stack."""
    service = CompileService(CompileCache(), max_workers=2)
    gateway = AsyncCompileService(service)
    server = GatewayServer(("127.0.0.1", 0), gateway)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield service, gateway, server, _Client(server.port)
    server.shutdown()
    server.server_close()
    gateway.close()
    service.close()


class TestSubmit:
    def test_wait_submission_returns_terminal_result(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post("/jobs", {
            "qasm": _qasm(1), "device": "ibm_qx4",
            "config": {"router": "sabre"},
            "job_id": "w1", "wait": True,
        })
        assert code == 200
        assert body["job_id"] == "w1"
        assert body["status"] == "ok"
        assert "artifact" not in body  # omitted unless ?artifact requested

    def test_nowait_submission_then_poll_result(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post("/jobs", {
            "qasm": _qasm(2), "device": "ibm_qx4", "job_id": "n1",
        })
        assert code == 202
        assert body == {
            "job_id": "n1", "status": "queued",
            "priority": "batch", "tenant": "default",
        }
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            code, body, _ = client.get("/jobs/n1/result")
            if code == 200:
                break
            assert code == 202
            time.sleep(0.05)
        assert code == 200 and body["status"] == "ok"

    def test_wait_with_artifact_inlined(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post("/jobs", {
            "qasm": _qasm(3), "device": "ibm_qx4",
            "wait": True, "artifact": True,
        })
        assert code == 200
        assert body["artifact"]["routing"]["added_swaps"] >= 0

    def test_job_id_with_slash_roundtrips(self, stack):
        _, _, _, client = stack
        job_id = "corpus/ibm_qx4/5q_s4"
        code, _, _ = client.post("/jobs", {
            "qasm": _qasm(4), "device": "ibm_qx4",
            "job_id": job_id, "wait": True,
        })
        assert code == 200
        quoted = urllib.parse.quote(job_id, safe="")
        code, body, _ = client.get(f"/jobs/{quoted}")
        assert code == 200 and body["job_id"] == job_id


class TestStatusAndEvents:
    def test_job_status_includes_event_log(self, stack):
        _, _, _, client = stack
        client.post("/jobs", {
            "qasm": _qasm(5), "device": "ibm_qx4",
            "job_id": "ev1", "wait": True,
        })
        code, body, _ = client.get("/jobs/ev1")
        assert code == 200
        assert body["terminal"] is True
        kinds = [evt["event"] for evt in body["events"]]
        assert kinds[0] == "queued" and kinds[-1] == "ok"

    def test_unknown_job_404(self, stack):
        _, _, _, client = stack
        assert client.get("/jobs/nope")[0] == 404
        assert client.get("/jobs/nope/result")[0] == 404

    def test_unknown_endpoint_404(self, stack):
        _, _, _, client = stack
        assert client.get("/frobnicate")[0] == 404
        assert client.post("/frobnicate", {})[0] == 404


class TestHealthAndStats:
    def test_healthz_ok_while_serving(self, stack):
        _, _, _, client = stack
        code, body, _ = client.get("/healthz")
        assert code == 200 and body["ok"] is True

    def test_stats_includes_gateway_section(self, stack):
        _, _, _, client = stack
        client.post("/jobs", {
            "qasm": _qasm(6), "device": "ibm_qx4", "wait": True,
        })
        code, body, _ = client.get("/stats")
        assert code == 200
        assert body["gateway"]["admitted"] >= 1
        assert "service" in body and "pool" in body


class TestBadRequests:
    def test_invalid_json_400(self, stack):
        _, _, _, client = stack
        req = urllib.request.Request(
            client.base + "/jobs", data=b"{not json", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_missing_qasm_400(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post("/jobs", {"device": "ibm_qx4"})
        assert code == 400 and "qasm" in body["error"]

    def test_unknown_device_400(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post(
            "/jobs", {"qasm": _qasm(7), "device": "not_a_device"}
        )
        assert code == 400 and "unknown device" in body["error"]

    def test_bad_priority_400(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post("/jobs", {
            "qasm": _qasm(8), "device": "ibm_qx4", "priority": "urgent",
        })
        assert code == 400 and "priority" in body["error"]

    def test_non_numeric_deadline_400(self, stack):
        _, _, _, client = stack
        code, body, _ = client.post("/jobs", {
            "qasm": _qasm(9), "device": "ibm_qx4", "deadline": "soon",
        })
        assert code == 400 and "deadline" in body["error"]


class TestOverloadAndDrain:
    def test_admission_rejection_is_429(self):
        service = CompileService(CompileCache(), max_workers=2)
        gateway = AsyncCompileService(
            service, auto_dispatch=False, max_queue_depth=1
        )
        server = GatewayServer(("127.0.0.1", 0), gateway)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = _Client(server.port)
        try:
            code, _, _ = client.post("/jobs", {
                "qasm": _qasm(10), "device": "ibm_qx4", "job_id": "fill",
            })
            assert code == 202
            code, body, _ = client.post("/jobs", {
                "qasm": _qasm(11), "device": "ibm_qx4", "job_id": "extra",
            })
            assert code == 429
            assert body["reason"] == "queue_full"
        finally:
            server.shutdown()
            server.server_close()
            gateway.close()
            service.close()

    def test_tenant_budget_429_sets_retry_after(self):
        service = CompileService(CompileCache(), max_workers=2)
        gateway = AsyncCompileService(
            service, auto_dispatch=False, tenant_burst=1, tenant_rate=2.0
        )
        server = GatewayServer(("127.0.0.1", 0), gateway)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = _Client(server.port)
        try:
            client.post("/jobs", {
                "qasm": _qasm(12), "device": "ibm_qx4",
            })
            code, body, headers = client.post("/jobs", {
                "qasm": _qasm(13), "device": "ibm_qx4",
            })
            assert code == 429
            assert body["reason"] == "tenant_budget"
            # RFC 9110 delay-seconds: a non-negative *integer*, rounded
            # up so clients never retry before the bucket refills.
            value = headers["Retry-After"]
            assert value.isdigit(), value
            assert int(value) >= 1
        finally:
            server.shutdown()
            server.server_close()
            gateway.close()
            service.close()

    def test_burst_only_tenant_429_omits_retry_after(self):
        # tenant_rate=0 is a legitimate burst-only budget: the bucket
        # never refills, so there is no honest retry time to advertise
        # (and computing one used to be a division by the zero rate).
        service = CompileService(CompileCache(), max_workers=2)
        gateway = AsyncCompileService(
            service, auto_dispatch=False, tenant_burst=1, tenant_rate=0.0
        )
        server = GatewayServer(("127.0.0.1", 0), gateway)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = _Client(server.port)
        try:
            code, _, _ = client.post("/jobs", {
                "qasm": _qasm(15), "device": "ibm_qx4",
            })
            assert code == 202
            code, body, headers = client.post("/jobs", {
                "qasm": _qasm(16), "device": "ibm_qx4",
            })
            assert code == 429
            assert body["reason"] == "tenant_budget"
            assert headers.get("Retry-After") is None
        finally:
            server.shutdown()
            server.server_close()
            gateway.close()
            service.close()

    def test_zero_retry_after_still_emits_header(self, stack):
        # retry_after == 0.0 means "retry immediately", which is still a
        # statement — the header must say "0", not disappear.
        from repro.service.gateway import Overloaded

        _, gateway, _, client = stack

        def reject(*args, **kwargs):
            raise Overloaded(
                "tenant_budget", "budget exhausted",
                tenant="default", retry_after=0.0,
            )

        gateway.submit = reject
        code, _, headers = client.post("/jobs", {
            "qasm": _qasm(17), "device": "ibm_qx4",
        })
        assert code == 429
        assert headers["Retry-After"] == "0"

    def test_draining_returns_503(self, stack):
        _, gateway, _, client = stack
        gateway.close(drain=True)
        code, body, _ = client.get("/healthz")
        assert code == 503 and body["draining"] is True
        code, body, _ = client.post("/jobs", {
            "qasm": _qasm(14), "device": "ibm_qx4",
        })
        assert code == 503
