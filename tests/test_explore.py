"""Tests for architecture exploration (paper Sec. VII / ref [69])."""

import pytest

from repro.core import Circuit
from repro.devices import get_device, linear_device
from repro.explore import (
    augment_topology,
    compare_topologies,
    evaluate_architecture,
)
from repro.workloads import qft, random_circuit


class TestEvaluate:
    def test_all_to_all_costs_zero_swaps(self):
        device = get_device("all_to_all", num_qubits=5)
        assert evaluate_architecture(device, [qft(5)]) == 0

    def test_line_costs_more_than_grid(self):
        workloads = [random_circuit(6, 20, seed=s, two_qubit_fraction=0.7) for s in range(3)]
        line = evaluate_architecture(linear_device(6), workloads)
        grid = evaluate_architecture(get_device("grid", rows=2, cols=3), workloads)
        assert line >= grid

    def test_depth_metric(self):
        device = linear_device(4)
        cost = evaluate_architecture(device, [qft(4)], metric="depth")
        assert cost > 0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            evaluate_architecture(linear_device(3), [], metric="joy")


class TestAugment:
    def test_adds_helpful_edge_to_line(self):
        # QFT's all-to-all interaction graph cannot embed in a line, so
        # routing costs SWAPs; one well-chosen extra coupling must help.
        device = linear_device(5)
        circuit = qft(5)
        assert evaluate_architecture(device, [circuit]) > 0
        result = augment_topology(
            device, [circuit], edge_budget=1, max_candidate_distance=4
        )
        assert result.added_edges  # something was added
        assert result.cost < result.base_cost
        assert result.improvement > 0

    def test_budget_respected(self):
        device = linear_device(5)
        workloads = [random_circuit(5, 15, seed=s, two_qubit_fraction=0.8) for s in range(2)]
        result = augment_topology(device, workloads, edge_budget=2)
        assert len(result.added_edges) <= 2

    def test_stops_when_no_improvement(self):
        device = get_device("all_to_all", num_qubits=4)
        result = augment_topology(device, [qft(4)], edge_budget=3)
        assert result.added_edges == []
        assert result.cost == result.base_cost

    def test_result_device_contains_new_edges(self):
        device = linear_device(4)
        circuit = Circuit(4).cnot(0, 3).cnot(0, 3)
        result = augment_topology(
            device, [circuit], edge_budget=1, max_candidate_distance=3
        )
        for a, b in result.added_edges:
            assert result.device.connected(a, b)
            assert not device.connected(a, b)

    def test_summary_text(self):
        device = linear_device(4)
        result = augment_topology(device, [qft(4)], edge_budget=1)
        text = result.summary()
        assert "base cost" in text and "final cost" in text


class TestCompare:
    def test_ranking_sorted_best_first(self):
        workloads = [qft(4)]
        devices = [
            linear_device(4),
            get_device("grid", rows=2, cols=2),
            get_device("all_to_all", num_qubits=4),
        ]
        ranking = compare_topologies(workloads, devices)
        costs = [cost for _, cost in ranking]
        assert costs == sorted(costs)
        assert ranking[0][0] == "ions4"  # all-to-all always wins
