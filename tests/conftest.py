"""Shared fixtures: devices and reference circuits."""

from __future__ import annotations

import pytest

from repro.core import Circuit
from repro.devices import (
    all_to_all_device,
    grid_device,
    ibm_qx4,
    ibm_qx5,
    linear_device,
    surface7,
    surface17,
)


@pytest.fixture
def qx4():
    return ibm_qx4()


@pytest.fixture
def qx5():
    return ibm_qx5()


@pytest.fixture
def s17():
    return surface17()


@pytest.fixture
def s7():
    return surface7()


@pytest.fixture
def line5():
    return linear_device(5)


@pytest.fixture
def grid33():
    return grid_device(3, 3)


@pytest.fixture
def ions5():
    return all_to_all_device(5)


@pytest.fixture
def bell():
    return Circuit(2, name="bell").h(0).cnot(0, 1)


@pytest.fixture
def ghz3():
    return Circuit(3, name="ghz3").h(0).cnot(0, 1).cnot(1, 2)
