"""Unit and property tests for repro.decompose.euler (ZYZ synthesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gates import gate_matrix
from repro.decompose import u_angles, zyz_angles
from repro.sim import allclose_up_to_global_phase


def _reconstruct(theta, phi, lam, alpha=0.0):
    return (
        np.exp(1j * alpha)
        * gate_matrix("rz", [phi])
        @ gate_matrix("ry", [theta])
        @ gate_matrix("rz", [lam])
    )


class TestKnownGates:
    @pytest.mark.parametrize("name", ["h", "x", "y", "z", "s", "t", "x90", "ym90"])
    def test_fixed_gates_roundtrip_exactly(self, name):
        matrix = gate_matrix(name)
        theta, phi, lam, alpha = zyz_angles(matrix)
        assert np.allclose(_reconstruct(theta, phi, lam, alpha), matrix, atol=1e-9)

    def test_identity_gives_zero_theta(self):
        theta, _, _, _ = zyz_angles(np.eye(2))
        assert math.isclose(theta, 0.0, abs_tol=1e-9)

    def test_u_angles_up_to_phase(self):
        matrix = gate_matrix("h")
        theta, phi, lam = u_angles(matrix)
        assert allclose_up_to_global_phase(
            gate_matrix("u", [theta, phi, lam]), matrix
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            zyz_angles(np.ones((2, 3)))

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            zyz_angles(np.array([[1, 1], [0, 1]], dtype=complex))

    def test_theta_range(self):
        for name in ("h", "x", "t", "y90"):
            theta, _, _, _ = zyz_angles(gate_matrix(name))
            assert 0.0 <= theta <= math.pi + 1e-9


def _random_unitary(a, b, c, d):
    """Random U(2) from four angles (Euler + phase)."""
    return (
        np.exp(1j * d)
        * gate_matrix("rz", [a])
        @ gate_matrix("ry", [b])
        @ gate_matrix("rz", [c])
    )


angles = st.floats(
    min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False
)


class TestPropertyBased:
    @given(angles, angles, angles, angles)
    @settings(max_examples=200, deadline=None)
    def test_zyz_reconstructs_any_unitary_exactly(self, a, b, c, d):
        matrix = _random_unitary(a, b, c, d)
        theta, phi, lam, alpha = zyz_angles(matrix)
        assert np.allclose(_reconstruct(theta, phi, lam, alpha), matrix, atol=1e-7)

    @given(angles, angles, angles)
    @settings(max_examples=100, deadline=None)
    def test_u_angles_phase_free(self, a, b, c):
        matrix = _random_unitary(a, b, c, 0.0)
        theta, phi, lam = u_angles(matrix)
        assert allclose_up_to_global_phase(
            gate_matrix("u", [theta, phi, lam]), matrix, atol=1e-7
        )
