"""Direct tests for reliability-aware placement and routing."""

import pytest

from repro.core import Circuit
from repro.devices import Device, ibm_qx5, linear_device
from repro.mapping.placement import noise_aware_placement
from repro.mapping.routing import route_reliability, route_sabre
from repro.sim.noise import NoiseModel
from repro.verify import equivalent_mapped
from repro.workloads import ghz, qft, random_circuit


def _lopsided_line():
    """A 4-qubit line whose 2-3 edge is terrible."""
    device = linear_device(4)
    noise = NoiseModel(
        error_2q=0.01,
        edge_error={(0, 1): 0.001, (1, 2): 0.001, (2, 3): 0.25},
    )
    return device, noise


class TestNoiseAwarePlacement:
    def test_avoids_bad_edge(self):
        device, noise = _lopsided_line()
        circuit = Circuit(2).cnot(0, 1).cnot(0, 1)
        placement = noise_aware_placement(circuit, device, noise)
        spots = {placement.phys(0), placement.phys(1)}
        assert spots != {2, 3}  # never the terrible edge
        # The pair must still be adjacent (cost includes distance).
        a, b = sorted(spots)
        assert device.connected(a, b)

    def test_prefers_best_edge_region(self):
        device, noise = _lopsided_line()
        circuit = ghz(3)
        placement = noise_aware_placement(circuit, device, noise)
        used = {placement.phys(q) for q in range(3)}
        assert used == {0, 1, 2}  # the good half of the chain

    def test_uniform_noise_reduces_to_distance_objective(self):
        device = linear_device(5)
        circuit = ghz(4)
        placement = noise_aware_placement(circuit, device, NoiseModel())
        from repro.mapping.routing import route

        assert route(circuit, device, "sabre", placement).added_swaps == 0

    def test_is_bijection(self):
        device, noise = _lopsided_line()
        placement = noise_aware_placement(qft(3), device, noise)
        assert sorted(placement.prog_to_phys()) == list(range(4))


class TestReliabilityRouter:
    def test_equivalence(self):
        device = ibm_qx5()
        noise = NoiseModel.with_random_edge_errors(device, seed=4)
        for seed in range(3):
            circuit = random_circuit(8, 25, seed=seed, two_qubit_fraction=0.6)
            result = route_reliability(circuit, device, noise=noise)
            assert equivalent_mapped(
                circuit, result.circuit, result.initial, result.final
            )

    def test_default_noise_model(self, line5):
        circuit = random_circuit(5, 15, seed=1, two_qubit_fraction=0.7)
        result = route_reliability(circuit, line5)
        assert result.router == "reliability"
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )

    def test_detours_around_terrible_edge(self):
        # Ring so a detour exists: edge (0,1) is terrible; routing 0-1
        # interactions should move through the good side.
        device = Device(
            "ring4", 4, [(0, 1), (1, 2), (2, 3), (3, 0)], ["u", "cnot"],
            symmetric=True,
        )
        noise = NoiseModel(
            error_2q=0.005,
            edge_error={(0, 1): 0.4, (1, 2): 0.005, (2, 3): 0.005, (0, 3): 0.005},
        )
        circuit = Circuit(4)
        for _ in range(3):
            circuit.cnot(0, 1)
        result = route_reliability(circuit, device, noise=noise)
        # The router may not avoid the edge entirely (operands start
        # there), but the mapping must stay correct...
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )
        # ...and combined with noise-aware placement the bad edge is
        # never used for the actual CNOTs.
        placement = noise_aware_placement(circuit, device, noise)
        placed = route_reliability(circuit, device, placement, noise=noise)
        for gate in placed.circuit:
            if gate.name == "cnot":
                pair = tuple(sorted(gate.qubits))
                assert pair != (0, 1)

    def test_wins_on_success_in_aggregate(self):
        device = ibm_qx5()
        gains = []
        for seed in (11, 3, 8):
            noise = NoiseModel.with_random_edge_errors(
                device, base_2q=0.02, spread=6.0, seed=seed, t2_ns=float("inf")
            )
            from repro.core.pipeline import compile_circuit

            base = compile_circuit(qft(6), device, placer="greedy", router="sabre")
            aware = compile_circuit(
                qft(6),
                device,
                placer=lambda c, d: noise_aware_placement(c, d, noise),
                router="reliability",
                router_options={"noise": noise},
            )
            gains.append(
                noise.circuit_success(aware.native, device)
                / max(noise.circuit_success(base.native, device), 1e-12)
            )
        import statistics

        assert statistics.geometric_mean(gains) > 1.0
