"""Tests for stage-level compile-cache sharding.

Covers the per-stage key derivation (`repro.service.keys.stage_key`),
the stage namespace of `CompileCache`, the pipeline's `stage_store`
hooks, invalidation-by-addressing per stage (a scheduler change must
re-key only the schedule stage), corrupt-entry semantics, tracing, and
the engine integration (inline and pool paths).
"""

import json

import pytest

from repro.core.pipeline import (
    PassConfig,
    STAGES,
    compile_with_config,
    routing_result_from_obj,
    routing_result_to_obj,
)
from repro.devices import get_device
from repro.obs import Tracer, use_tracer
from repro.qasm import parse_qasm, to_openqasm
from repro.resilience.faults import FaultPlan
from repro.service import CompileCache, CompileJob, CompileService
from repro.service.artifact import result_to_artifact
from repro.service.cache import CacheStageStore
from repro.service.engine import run_payload
from repro.service.keys import canonical_json, stage_key
from repro.workloads import random_circuit


@pytest.fixture
def device():
    return get_device("ibm_qx4")


@pytest.fixture
def qasm():
    return to_openqasm(
        random_circuit(5, 18, seed=9, two_qubit_fraction=0.6)
    )


def _compile(qasm, device, store=None, **cfg):
    return compile_with_config(
        parse_qasm(qasm), device, PassConfig(**cfg), stage_store=store
    )


class TestStageKeys:
    INPUTS = {"circuit_qasm": "OPENQASM 2.0;", "device": {"n": 5}}

    def test_deterministic(self):
        a = stage_key("routing", self.INPUTS, {"router": "sabre"})
        b = stage_key("routing", self.INPUTS, {"router": "sabre"})
        assert a == b and len(a) == 64

    def test_stage_name_changes_key(self):
        assert stage_key("routing", self.INPUTS, {}) != stage_key(
            "placement", self.INPUTS, {}
        )

    def test_inputs_change_key(self):
        other = {"circuit_qasm": "OPENQASM 2.0;\nqreg q[1];", "device": {"n": 5}}
        assert stage_key("routing", self.INPUTS, {}) != stage_key(
            "routing", other, {}
        )

    def test_config_slice_changes_key(self):
        base = stage_key("routing", self.INPUTS, {"router": "sabre"})
        assert stage_key("routing", self.INPUTS, {"router": "astar"}) != base

    def test_version_changes_key(self):
        base = stage_key("routing", self.INPUTS, {})
        assert stage_key("routing", self.INPUTS, {}, version="0.0.0-x") != base

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError):
            stage_key("routing", {"bad": object()}, {})


class TestStageSlice:
    def test_every_stage_has_a_slice(self):
        config = PassConfig(
            placer="assignment", router="astar",
            router_options={"lookahead_layers": 2},
            decompose=True, optimize=True,
            schedule="constraints", control_constraints=True,
        )
        assert config.stage_slice("placement") == {"placer": "assignment"}
        assert config.stage_slice("routing") == {
            "router": "astar", "router_options": {"lookahead_layers": 2},
        }
        assert config.stage_slice("lower") == {
            "decompose": True, "optimize": True,
        }
        assert config.stage_slice("schedule") == {
            "schedule": "constraints", "control_constraints": True,
        }

    def test_slices_cover_every_config_knob(self):
        # The union of all slices must mention every PassConfig field:
        # a knob outside every slice would change output without
        # changing any stage key.
        config = PassConfig()
        covered = set()
        for stage in STAGES:
            covered |= set(config.stage_slice(stage))
        assert covered == set(config.to_dict())

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            PassConfig().stage_slice("teleport")


class TestRoutingResultRoundTrip:
    def test_survives_serialisation(self, qasm, device):
        routed = _compile(qasm, device).routed
        obj = routing_result_to_obj(routed)
        json.dumps(obj)  # must be plain JSON
        restored = routing_result_from_obj(obj)
        assert to_openqasm(restored.circuit) == to_openqasm(routed.circuit)
        assert restored.initial.prog_to_phys() == routed.initial.prog_to_phys()
        assert restored.final.prog_to_phys() == routed.final.prog_to_phys()
        assert restored.added_swaps == routed.added_swaps
        assert restored.router == routed.router

    def test_qasm_form_is_a_fixed_point(self, qasm, device):
        # Key stability across reload: serialising a reloaded routing
        # result must produce the same bytes it was loaded from.
        obj = routing_result_to_obj(_compile(qasm, device).routed)
        again = routing_result_to_obj(routing_result_from_obj(obj))
        assert canonical_json(again) == canonical_json(obj)


class TestStageReuse:
    def test_placement_reused_across_routers(self, qasm, device):
        cache = CompileCache()
        store = CacheStageStore(cache)
        _compile(qasm, device, store, router="sabre")
        _compile(qasm, device, store, router="astar")
        stages = cache.stats()["stages"]
        assert stages["placement"]["memory_hits"] == 1
        assert stages["placement"]["misses"] == 1
        assert stages["routing"]["misses"] == 2  # distinct router slices

    def test_scheduler_change_misses_only_schedule_stage(self, qasm, device):
        # Invalidation by addressing, per stage: a scheduler tweak
        # re-keys the schedule stage and nothing upstream, so the
        # routed/lowered circuit is reused — but never a stale schedule.
        cache = CompileCache()
        store = CacheStageStore(cache)
        _compile(qasm, device, store, schedule="asap")
        _compile(qasm, device, store, schedule="alap")
        stages = cache.stats()["stages"]
        for upstream in ("placement", "routing", "lower"):
            assert stages[upstream]["memory_hits"] == 1, upstream
            assert stages[upstream]["misses"] == 1, upstream
        assert stages["schedule"]["misses"] == 2
        assert "memory_hits" not in stages["schedule"]
        assert cache.stats()["stage_hits"] == 3
        assert cache.stats()["stage_misses"] == 5

    def test_staged_artifacts_byte_identical_to_fresh(self, qasm, device):
        store = CacheStageStore(CompileCache())
        for router in ("sabre", "naive"):
            for sched in ("asap", "alap"):
                cfg = PassConfig(router=router, schedule=sched)
                staged = compile_with_config(
                    parse_qasm(qasm), device, cfg, stage_store=store
                )
                fresh = compile_with_config(parse_qasm(qasm), device, cfg)
                assert canonical_json(
                    result_to_artifact(staged, config=cfg)
                ) == canonical_json(result_to_artifact(fresh, config=cfg))

    def test_callable_placer_never_stage_cached(self, qasm, device):
        from repro.mapping.placement import PLACERS

        cache = CompileCache()
        store = CacheStageStore(cache)
        placer = PLACERS["assignment"]  # a callable, not a name
        result = compile_with_config(
            parse_qasm(qasm), device, stage_store=store,
        )
        del result
        custom = parse_qasm(qasm)
        from repro.core.pipeline import compile_circuit

        compile_circuit(custom, device, placer=placer, stage_store=store)
        stages = cache.stats()["stages"]
        # One placement probe from the named run; none from the callable.
        assert stages["placement"]["misses"] == 1
        assert stages["placement"].get("memory_hits", 0) == 0

    def test_unserialisable_inputs_are_uncacheable_not_fatal(self):
        store = CacheStageStore(CompileCache())
        assert store.load("routing", {"bad": object()}, {}) is None
        store.store("routing", {"bad": object()}, {}, {"x": 1})  # no raise
        assert store.cache.stage_counters() == {}


class TestStageDiskTier:
    def test_stage_entries_shared_across_instances(self, qasm, device, tmp_path):
        first = CompileCache(directory=tmp_path)
        _compile(qasm, device, CacheStageStore(first), router="sabre")
        layout = {
            p.relative_to(tmp_path).parts[:2]
            for p in tmp_path.glob("stages/*/*.json")
        }
        assert layout == {("stages", s) for s in STAGES}

        fresh = CompileCache(directory=tmp_path)
        _compile(qasm, device, CacheStageStore(fresh), router="sabre")
        stages = fresh.stats()["stages"]
        for stage in STAGES:
            assert stages[stage]["disk_hits"] == 1, stage
            assert "misses" not in stages[stage], stage

    def test_corrupt_stage_entry_deleted_and_recomputed(
        self, qasm, device, tmp_path
    ):
        first = CompileCache(directory=tmp_path)
        _compile(qasm, device, CacheStageStore(first), router="sabre")
        expected = canonical_json(result_to_artifact(
            _compile(qasm, device, router="sabre"),
            config=PassConfig(router="sabre"),
        ))
        [sched_file] = tmp_path.glob("stages/schedule/*.json")
        sched_file.write_text("{not json")

        fresh = CompileCache(directory=tmp_path)
        result = _compile(qasm, device, CacheStageStore(fresh), router="sabre")
        stages = fresh.stats()["stages"]
        assert stages["schedule"]["disk_errors"] == 1
        assert stages["schedule"]["misses"] == 1
        # The corrupt bytes never reached the result, and the slot was
        # rewritten with a valid entry.
        assert canonical_json(result_to_artifact(
            result, config=PassConfig(router="sabre")
        )) == expected
        json.loads(sched_file.read_text())

    def test_clear_drops_stage_entries(self, qasm, device, tmp_path):
        cache = CompileCache(directory=tmp_path)
        _compile(qasm, device, CacheStageStore(cache))
        assert list(tmp_path.glob("stages/*/*.json"))
        cache.clear()
        assert not list(tmp_path.glob("stages/*/*.json"))


class TestStageTracing:
    def test_probes_emit_hit_and_miss_spans(self, qasm, device):
        store = CacheStageStore(CompileCache())
        tracer = Tracer()
        with use_tracer(tracer):
            _compile(qasm, device, store, schedule="asap")
            _compile(qasm, device, store, schedule="alap")
        names = [e["name"] for e in tracer.finished()]
        assert names.count("cache.stage_miss") == 5
        assert names.count("cache.stage_hit") == 3
        hit_stages = {
            e["args"]["stage"]
            for e in tracer.finished()
            if e["name"] == "cache.stage_hit"
        }
        assert hit_stages == {"placement", "routing", "lower"}


class TestServiceIntegration:
    def _jobs(self, qasm, device, routers=("sabre", "astar"),
              schedule="asap"):
        return [
            CompileJob.create(
                qasm, device,
                PassConfig(router=router, schedule=schedule),
                job_id=f"{router}/{schedule}",
            )
            for router in routers
        ]

    def test_inline_submits_share_stage_entries(self, qasm, device):
        service = CompileService(CompileCache())
        for job in self._jobs(qasm, device):
            assert service.submit(job).ok
        svc = service.stats()["service"]
        assert svc["stage_hits"] >= 1  # placement reused across routers
        assert svc["stage_misses"] >= 2
        service.close()

    def test_stage_cache_flag_off_means_no_stage_activity(self, qasm, device):
        service = CompileService(CompileCache(), stage_cache=False)
        for job in self._jobs(qasm, device):
            assert service.submit(job).ok
        svc = service.stats()["service"]
        assert svc["stage_hits"] == 0 and svc["stage_misses"] == 0
        assert service.cache.stage_counters() == {}
        service.close()

    def test_pool_workers_probe_disk_and_parent_merges_counters(
        self, qasm, device, tmp_path
    ):
        service = CompileService(
            CompileCache(directory=tmp_path), max_workers=2
        )
        try:
            cold = service.submit_batch(self._jobs(qasm, device))
            assert all(r.ok for r in cold)
            assert list(tmp_path.glob("stages/*/*.json"))
            # New schedule => every full-pipeline key misses, but the
            # workers find placement/routing/lower on disk.
            warm = service.submit_batch(
                self._jobs(qasm, device, schedule="alap")
            )
            assert all(r.ok and r.cache_hit is None for r in warm)
            svc = service.stats()["service"]
            assert svc["stage_hits"] >= 3
            stages = service.cache.stats()["stages"]
            assert stages["schedule"].get("disk_hits", 0) == 0
        finally:
            service.close()

    def test_fault_plan_runs_never_touch_the_stage_cache(
        self, qasm, device, tmp_path
    ):
        plan = FaultPlan.from_dict({
            "seed": 7,
            "faults": [{
                "stage": "worker", "action": "crash",
                "job_id": "someone-else", "times": None,
            }],
        })
        job = CompileJob.create(
            qasm, device, PassConfig(), job_id="clean-job"
        )
        payload = job.payload()
        payload["faults"] = plan.to_dict()
        payload["stage_cache_dir"] = str(tmp_path / "stages-under-faults")
        outcome = run_payload(payload)
        assert outcome["status"] == "ok"
        assert "stage_counters" not in outcome
        assert not (tmp_path / "stages-under-faults").exists()
