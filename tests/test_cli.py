"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.qasm import parse_qasm

GHZ_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "ghz.qasm"
    path.write_text(GHZ_QASM)
    return path


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDevicesCommand:
    def test_lists_registry(self):
        code, text = _run(["devices"])
        assert code == 0
        assert "ibm_qx4" in text and "surface17" in text


class TestInfoCommand:
    def test_fixed_device(self):
        code, text = _run(["info", "--device", "ibm_qx4"])
        assert code == 0
        assert "control->target" in text

    def test_parametric_device(self):
        code, text = _run(["info", "--device", "grid", "--rows", "2", "--cols", "3"])
        assert code == 0
        assert "grid2x3" in text

    def test_parametric_device_missing_params(self):
        with pytest.raises(SystemExit):
            _run(["info", "--device", "linear"])


class TestMapCommand:
    def test_report_to_stdout(self, qasm_file):
        code, text = _run(["map", str(qasm_file), "--device", "ibm_qx4"])
        assert code == 0
        assert "ibm_qx4" in text and "SWAP" in text

    def test_output_file_is_native_qasm(self, qasm_file, tmp_path):
        out_path = tmp_path / "mapped.qasm"
        code, _ = _run(
            ["map", str(qasm_file), "--device", "ibm_qx4", "-o", str(out_path)]
        )
        assert code == 0
        mapped = parse_qasm(out_path.read_text())
        assert mapped.num_qubits == 5
        assert {g.name for g in mapped if g.is_unitary} <= {"u", "cnot"}

    def test_cqasm_output_scheduled(self, qasm_file, tmp_path):
        out_path = tmp_path / "mapped.cq"
        code, _ = _run(
            [
                "map", str(qasm_file), "--device", "surface17",
                "--schedule", "constraints", "--cqasm", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.read_text().startswith("version 1.0")

    def test_verify_flag(self, qasm_file):
        code, text = _run(
            ["map", str(qasm_file), "--device", "ibm_qx4", "--verify"]
        )
        assert code == 0
        assert "equivalent" in text

    def test_verify_skipped_on_large_device(self, qasm_file, capsys):
        # Statevector verification is infeasible past STATEVECTOR_LIMIT
        # qubits; the CLI warns and skips instead of crashing.
        code, _ = _run(
            [
                "map", str(qasm_file), "--device", "grid",
                "--rows", "5", "--cols", "5", "--verify",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "skipping" in err and "statevector limit" in err

    def test_disconnected_device_reports_clean_error(
        self, qasm_file, tmp_path, capsys
    ):
        # A routing failure (here: the GHZ circuit needs qubits that sit
        # in different components of the coupling graph) must come out
        # as the one-line CliError path, not a networkx traceback.
        import json

        config = tmp_path / "split.json"
        config.write_text(
            json.dumps(
                {
                    "name": "split",
                    "num_qubits": 4,
                    "edges": [[0, 1], [2, 3]],
                    "native_gates": ["u", "h", "cnot"],
                    "symmetric": True,
                }
            )
        )
        code, _ = _run(
            [
                "map", str(qasm_file), "--device-config", str(config),
                "--router", "naive",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "routing failed" in err
        assert "no path between qubits" in err
        assert "networkx" not in err.lower()

    def test_optimize_flag_reduces_gates(self, qasm_file):
        _, plain = _run(["map", str(qasm_file), "--device", "surface17"])
        _, optimised = _run(
            ["map", str(qasm_file), "--device", "surface17", "--optimize"]
        )

        def native_gates(report):
            for line in report.splitlines():
                if "native:" in line:
                    return int(line.split()[1])
            raise AssertionError(report)

        assert native_gates(optimised) <= native_gates(plain)

    def test_draw_flag(self, qasm_file):
        code, text = _run(
            ["map", str(qasm_file), "--device", "ibm_qx4", "--draw"]
        )
        assert code == 0
        assert "input circuit:" in text and "q0:" in text

    def test_no_decompose(self, qasm_file, tmp_path):
        out_path = tmp_path / "routed.qasm"
        code, _ = _run(
            [
                "map", str(qasm_file), "--device", "ibm_qx4",
                "--no-decompose", "--schedule", "none", "-o", str(out_path),
            ]
        )
        assert code == 0
        routed = parse_qasm(out_path.read_text())
        assert routed.count("h") > 0  # not lowered to u

    def test_device_config_file(self, qasm_file, tmp_path):
        from repro.devices import surface7

        config = tmp_path / "chip.json"
        surface7().to_json(config)
        code, text = _run(
            ["map", str(qasm_file), "--device-config", str(config), "--report"]
        )
        assert code == 0
        assert "surface7" in text

    def test_grid_device_with_dimensions(self, qasm_file):
        code, _ = _run(
            [
                "map", str(qasm_file), "--device", "grid",
                "--rows", "2", "--cols", "2",
            ]
        )
        assert code == 0

    def test_schedule_table_in_report(self, qasm_file):
        code, text = _run(
            ["map", str(qasm_file), "--device", "ibm_qx4", "--report"]
        )
        assert code == 0
        assert "schedule:" in text


class TestSimulateCommand:
    def test_ideal_sampling_is_deterministic_circuit(self, tmp_path):
        path = tmp_path / "x.qasm"
        path.write_text("qreg q[1]; creg c0[1]; x q[0]; measure q[0] -> c0[0];")
        code, text = _run(["simulate", str(path), "--shots", "10"])
        assert code == 0
        assert "1 : 10" in text

    def test_bell_correlations(self, qasm_file):
        code, text = _run(["simulate", str(qasm_file), "--shots", "100"])
        assert code == 0
        # GHZ circuit without explicit measures: all qubits reported.
        outcomes = {
            line.strip().split(" : ")[0]
            for line in text.splitlines()
            if " : " in line and line.strip()[0] in "01"
        }
        assert outcomes <= {"000", "111"}

    def test_noisy_sampling(self, tmp_path):
        path = tmp_path / "x.qasm"
        path.write_text("qreg q[1]; creg c0[1]; x q[0]; measure q[0] -> c0[0];")
        code, text = _run(
            ["simulate", str(path), "--shots", "300", "--noise",
             "--error-2q", "0.05"]
        )
        assert code == 0
        assert "noisy sampling" in text

    def test_seeded_reproducibility(self, qasm_file):
        _, a = _run(["simulate", str(qasm_file), "--shots", "50", "--seed", "4"])
        _, b = _run(["simulate", str(qasm_file), "--shots", "50", "--seed", "4"])
        assert a == b


class TestCliErrors:
    """Bad input produces one clean line on stderr and exit code 2."""

    def test_missing_input_file(self, capsys):
        code, text = _run(["map", "/nonexistent/x.qasm", "--device", "ibm_qx4"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert err.strip().count("\n") == 0  # one line, no traceback
        assert "/nonexistent/x.qasm" in err

    def test_unparsable_input_file(self, tmp_path, capsys):
        path = tmp_path / "bad.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n")
        code, text = _run(["map", str(path), "--device", "ibm_qx4"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "invalid QASM" in err and "frobnicate" in err
        assert "Traceback" not in err

    def test_simulate_missing_file(self, capsys):
        code, text = _run(["simulate", "/nonexistent/x.qasm"])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_simulate_unparsable_file(self, tmp_path, capsys):
        path = tmp_path / "bad.qasm"
        path.write_text("this is not qasm at all")
        code, text = _run(["simulate", str(path)])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_good_input_still_exits_zero(self, qasm_file):
        code, _ = _run(["map", str(qasm_file), "--device", "ibm_qx4"])
        assert code == 0
