"""Tests for CNOT direction fixing (Section IV / VI-A)."""

import pytest

from repro.core import Circuit
from repro.devices import Device
from repro.mapping.direction import count_wrong_directions, fix_directions
from repro.verify import equivalent_circuits


def _directed_pair():
    return Device("d2", 2, [(0, 1)], ["u", "h", "cnot"], symmetric=False)


class TestCounting:
    def test_correct_direction_counts_zero(self):
        assert count_wrong_directions(Circuit(2).cnot(0, 1), _directed_pair()) == 0

    def test_wrong_direction_counted(self):
        assert count_wrong_directions(Circuit(2).cnot(1, 0), _directed_pair()) == 1

    def test_symmetric_device_never_wrong(self, s17):
        assert count_wrong_directions(Circuit(2).cnot(1, 0), s17) == 0

    def test_symmetric_gate_never_wrong(self):
        device = Device("d", 2, [(0, 1)], ["cz", "cnot"], symmetric=False)
        circuit = Circuit(2).cz(1, 0)
        assert count_wrong_directions(circuit, device) == 0


class TestFixing:
    def test_identity_on_symmetric_device(self, s17, bell):
        fixed, flips = fix_directions(bell, s17)
        assert flips == 0
        assert fixed == bell

    def test_flip_inserts_four_hadamards(self):
        device = _directed_pair()
        circuit = Circuit(2).cnot(1, 0)
        fixed, flips = fix_directions(circuit, device)
        assert flips == 1
        assert fixed.count("h") == 4
        assert fixed.count("cnot") == 1
        assert next(g for g in fixed if g.name == "cnot").qubits == (0, 1)

    def test_flip_preserves_semantics(self):
        device = _directed_pair()
        circuit = Circuit(2).h(0).cnot(1, 0).t(1)
        fixed, _ = fix_directions(circuit, device)
        assert equivalent_circuits(circuit, fixed)

    def test_result_has_no_wrong_directions(self, qx4):
        circuit = Circuit(5).cnot(0, 1).cnot(2, 3).cnot(3, 4)
        fixed, _ = fix_directions(circuit, qx4)
        assert count_wrong_directions(fixed, qx4) == 0

    def test_unconnected_pair_rejected(self, qx4):
        with pytest.raises(ValueError):
            fix_directions(Circuit(5).cnot(0, 4), qx4)

    def test_non_cnot_asymmetric_rejected(self):
        device = Device("d", 2, [(0, 1)], ["crz", "cnot"], symmetric=False)
        circuit = Circuit(2)
        from repro.core.gates import Gate

        circuit.append(Gate("crz", (1, 0), (0.5,)))
        with pytest.raises(ValueError):
            fix_directions(circuit, device)

    def test_flip_count_matches_counter(self, qx4):
        circuit = Circuit(5).cnot(0, 1).cnot(1, 0).cnot(0, 2).cnot(2, 0)
        wrong = count_wrong_directions(circuit, qx4)
        _, flips = fix_directions(circuit, qx4)
        assert flips == wrong == 2
