"""Property-based tests over the newer subsystems.

Complements ``test_properties.py`` with hypothesis coverage of the
optimizer, commutation relaxation, constraint scheduling, pulse
lowering, and the shuttle router — all anchored on the one invariant
that matters: the computation never changes.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Circuit
from repro.core.dag import DependencyGraph
from repro.decompose import decompose_circuit
from repro.devices import get_device, quantum_dot_device, surface17
from repro.mapping.control import schedule_with_constraints
from repro.mapping.routing import route_sabre, route_shuttle
from repro.optimize import optimize_circuit
from repro.pulse import lower_to_pulses
from repro.verify import equivalent_circuits, equivalent_mapped

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def circuits(draw, max_qubits=5, max_gates=14):
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    circuit = Circuit(n)
    for _ in range(num_gates):
        kind = draw(
            st.sampled_from(
                ["h", "t", "tdg", "x", "s", "rz", "rx", "cnot", "cz", "swap", "cp"]
            )
        )
        if kind in ("cnot", "cz", "swap", "cp"):
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(
                st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != a)
            )
            if kind == "cp":
                angle = draw(
                    st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)
                )
                circuit.cp(angle, a, b)
            else:
                getattr(circuit, kind)(a, b)
        elif kind in ("rz", "rx"):
            angle = draw(
                st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)
            )
            getattr(circuit, kind)(angle, draw(st.integers(min_value=0, max_value=n - 1)))
        else:
            getattr(circuit, kind)(draw(st.integers(min_value=0, max_value=n - 1)))
    return circuit


class TestOptimizerProperties:
    @given(circuits())
    @settings(**_SETTINGS)
    def test_optimizer_preserves_unitary(self, circuit):
        assert equivalent_circuits(circuit, optimize_circuit(circuit))

    @given(circuits())
    @settings(**_SETTINGS)
    def test_optimizer_with_fusion_preserves_unitary(self, circuit):
        assert equivalent_circuits(circuit, optimize_circuit(circuit, fuse=True))

    @given(circuits())
    @settings(**_SETTINGS)
    def test_optimizer_is_idempotent_on_size(self, circuit):
        once = optimize_circuit(circuit)
        twice = optimize_circuit(once)
        assert twice.size() == once.size()


class TestCommutationProperties:
    @given(circuits())
    @settings(**_SETTINGS)
    def test_relaxed_edges_are_subset_of_strict_closure(self, circuit):
        import networkx as nx

        strict = DependencyGraph(circuit)
        relaxed = DependencyGraph(circuit, commutation=True)
        closure = nx.transitive_closure_dag(strict.graph)
        for earlier, later in relaxed.graph.edges:
            assert closure.has_edge(earlier, later)

    @given(circuits(max_qubits=4, max_gates=12))
    @settings(max_examples=15, deadline=None)
    def test_commutation_routing_preserves_semantics(self, circuit):
        device = get_device("ibm_qx4")
        result = route_sabre(circuit, device, commutation=True)
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )


class TestSchedulingProperties:
    @given(circuits(max_qubits=5, max_gates=12))
    @settings(max_examples=12, deadline=None)
    def test_constraint_schedule_valid_and_complete(self, circuit):
        device = surface17()
        routed = route_sabre(circuit, device).circuit
        native = decompose_circuit(routed, device)
        schedule = schedule_with_constraints(native, device)
        assert schedule.validate() == []
        assert len(schedule) == len(native.gates)

    @given(circuits(max_qubits=5, max_gates=12))
    @settings(max_examples=12, deadline=None)
    def test_pulse_lowering_always_validates(self, circuit):
        device = surface17()
        routed = route_sabre(circuit, device).circuit
        native = decompose_circuit(routed, device)
        schedule = schedule_with_constraints(native, device)
        program = lower_to_pulses(schedule, device)
        assert program.validate() == []
        assert program.latency == schedule.latency


class TestShuttleProperties:
    @given(circuits(max_qubits=5, max_gates=12))
    @settings(max_examples=12, deadline=None)
    def test_shuttle_routing_preserves_semantics(self, circuit):
        device = quantum_dot_device(3, 3)
        result = route_shuttle(circuit, device)
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )


class TestQasmProperties:
    @given(circuits(max_qubits=4, max_gates=10))
    @settings(**_SETTINGS)
    def test_cqasm_roundtrip(self, circuit):
        from repro.qasm import parse_cqasm, to_cqasm

        back = parse_cqasm(to_cqasm(circuit))
        assert back.gates == circuit.gates
