"""Tests for the Section VI-C unique hardware features:

trapped ions (all-to-all rxx with serialized two-qubit gates) and
photonics (demolition measurement with photon re-initialisation).
"""

import numpy as np
import pytest

from repro.core import Circuit
from repro.core.gates import Gate, gate_matrix
from repro.decompose import decompose_circuit
from repro.devices import get_device, ion_trap_device, photonic_device
from repro.mapping import insert_photon_reinit
from repro.mapping.control import schedule_with_constraints
from repro.mapping.routing import route
from repro.verify import equivalent_circuits, equivalent_mapped
from repro.workloads import ghz, qft, random_circuit


class TestRxxGate:
    def test_matrix_is_ms_interaction(self):
        import math

        theta = 0.7
        got = gate_matrix("rxx", [theta])
        xx = np.kron(gate_matrix("x"), gate_matrix("x"))
        expected = (
            math.cos(theta / 2) * np.eye(4) - 1j * math.sin(theta / 2) * xx
        )
        assert np.allclose(got, expected)

    def test_symmetric(self):
        assert Gate("rxx", (0, 1), (0.3,)).is_symmetric

    def test_inverse_negates_angle(self):
        gate = Gate("rxx", (0, 1), (0.3,))
        assert gate.inverse().params == (-0.3,)

    def test_cnot_from_rxx(self):
        from repro.decompose.rules import expand_cnot_to_rxx

        expansion = Circuit(2, expand_cnot_to_rxx(0, 1))
        assert equivalent_circuits(Circuit(2).cnot(0, 1), expansion)

    @pytest.mark.parametrize("theta", [0.3, -1.2, np.pi / 2])
    def test_rxx_from_cnot(self, theta):
        from repro.decompose.rules import expand_rxx_to_cnot

        original = Circuit(2, [Gate("rxx", (0, 1), (theta,))])
        expansion = Circuit(2, expand_rxx_to_cnot(theta, 0, 1))
        assert equivalent_circuits(original, expansion)


class TestIonTrap:
    def test_all_to_all(self):
        device = ion_trap_device(5)
        for a in range(5):
            for b in range(a + 1, 5):
                assert device.connected(a, b)

    def test_registry(self):
        assert get_device("iontrap", num_qubits=4).num_qubits == 4

    def test_full_lowering_to_rxx_basis(self):
        device = ion_trap_device(4)
        circuit = qft(4)
        lowered = decompose_circuit(circuit, device)
        assert device.conforms(lowered)
        twoq = {g.name for g in lowered if len(g.qubits) == 2}
        assert twoq == {"rxx"}
        assert equivalent_circuits(circuit, lowered)

    def test_no_routing_needed(self):
        device = ion_trap_device(5)
        circuit = random_circuit(5, 20, seed=1, two_qubit_fraction=0.7)
        result = route(circuit, device, "sabre")
        assert result.added_swaps == 0

    def test_serial_two_qubit_gates(self):
        device = ion_trap_device(4)
        circuit = Circuit(4)
        circuit.append(Gate("rxx", (0, 1), (1.0,)))
        circuit.append(Gate("rxx", (2, 3), (1.0,)))
        serial = schedule_with_constraints(circuit, device)
        parallel = schedule_with_constraints(
            circuit, device, serial_two_qubit=False
        )
        assert serial.latency == 2 * device.duration("rxx")
        assert parallel.latency == device.duration("rxx")

    def test_single_qubit_gates_still_parallel(self):
        device = ion_trap_device(3)
        circuit = Circuit(3).rx(0.5, 0).rx(0.5, 1).rx(0.5, 2)
        schedule = schedule_with_constraints(circuit, device)
        assert schedule.latency == 1

    def test_pipeline_end_to_end(self):
        from repro.core.pipeline import compile_circuit

        device = ion_trap_device(5)
        circuit = ghz(5)
        result = compile_circuit(circuit, device, schedule="constraints")
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )


class TestPhotonics:
    def test_demolition_violation_detected(self):
        device = photonic_device(2)
        bad = Circuit(2).h(0).measure(0).x(0)
        problems = device.validate_circuit(bad)
        assert any("destroyed" in p.reason for p in problems)

    def test_terminal_measurements_are_fine(self):
        device = photonic_device(2)
        circuit = Circuit(2).h(0).cnot(0, 1).measure_all()
        assert device.conforms(circuit)

    def test_explicit_prep_accepted(self):
        device = photonic_device(1)
        circuit = Circuit(1).measure(0).prep_z(0).x(0)
        assert device.conforms(circuit)

    def test_reinit_pass_repairs(self):
        device = photonic_device(2)
        bad = Circuit(2).h(0).measure(0).x(0).measure(0)
        fixed = insert_photon_reinit(bad, device)
        assert device.conforms(fixed)
        assert fixed.count("prep_z") == 1  # only the reused measurement

    def test_reinit_pass_noop_without_feature(self, qx4):
        circuit = Circuit(2).measure(0).x(0)
        assert insert_photon_reinit(circuit, qx4) == circuit

    def test_reinit_skips_already_prepped(self):
        device = photonic_device(1)
        circuit = Circuit(1).measure(0).prep_z(0).x(0)
        fixed = insert_photon_reinit(circuit, device)
        assert fixed.count("prep_z") == 1

    def test_reinit_semantics_measure_then_reuse(self):
        """measure + new photon leaves |0> on the line."""
        from repro.sim import StateVector

        device = photonic_device(1)
        circuit = insert_photon_reinit(Circuit(1).x(0).measure(0).h(0), device)
        sv = StateVector(1, rng=np.random.default_rng(0))
        sv.run(circuit)
        # After prep_z the H acts on |0>: |+> regardless of the outcome.
        assert abs(abs(sv.state[0]) - 1 / np.sqrt(2)) < 1e-9

    def test_registry(self):
        assert get_device("photonic", num_qubits=3).num_qubits == 3
