"""Tests for commutation-aware dependency analysis (ref [58])."""

import pytest

from repro.core import Circuit, DependencyGraph
from repro.core.commutation import commutation_class, commutes_on, relaxed_dependencies
from repro.core.gates import Gate
from repro.verify import equivalent_circuits, equivalent_mapped


class TestCommutationClass:
    def test_z_diagonal_single_qubit(self):
        for name in ("z", "s", "t", "tdg", "rz"):
            gate = Gate(name, (0,), (0.5,) if name == "rz" else ())
            assert commutation_class(gate, 0) == "z"

    def test_x_diagonal_single_qubit(self):
        for name, params in (("x", ()), ("rx", (0.5,)), ("x90", ()), ("xm90", ())):
            assert commutation_class(Gate(name, (0,), params), 0) == "x"

    def test_opaque_single_qubit(self):
        assert commutation_class(Gate("h", (0,)), 0) is None
        assert commutation_class(Gate("y", (0,)), 0) is None
        assert commutation_class(Gate("u", (0,), (1, 2, 3)), 0) is None

    def test_cnot_roles(self):
        cnot = Gate("cnot", (0, 1))
        assert commutation_class(cnot, 0) == "z"  # control
        assert commutation_class(cnot, 1) == "x"  # target

    def test_cz_both_z(self):
        cz = Gate("cz", (0, 1))
        assert commutation_class(cz, 0) == "z"
        assert commutation_class(cz, 1) == "z"

    def test_toffoli(self):
        tof = Gate("toffoli", (0, 1, 2))
        assert commutation_class(tof, 0) == "z"
        assert commutation_class(tof, 1) == "z"
        assert commutation_class(tof, 2) == "x"

    def test_conditioned_gate_is_opaque(self):
        gate = Gate("x", (0,), condition=(1, 1))
        assert commutation_class(gate, 0) is None

    def test_wrong_qubit_raises(self):
        with pytest.raises(ValueError):
            commutation_class(Gate("x", (0,)), 1)

    def test_commutes_on(self):
        a = Gate("cnot", (0, 1))
        b = Gate("cnot", (0, 2))
        assert commutes_on(a, b, 0)       # shared control
        c = Gate("cnot", (1, 0))
        assert not commutes_on(a, c, 0)   # control vs target


class TestRelaxedGraph:
    def test_shared_control_cnots_unordered(self):
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2)
        strict = DependencyGraph(circuit)
        relaxed = DependencyGraph(circuit, commutation=True)
        assert strict.predecessors(1) == [0]
        assert relaxed.predecessors(1) == []

    def test_shared_target_cnots_unordered(self):
        circuit = Circuit(3).cnot(1, 0).cnot(2, 0)
        relaxed = DependencyGraph(circuit, commutation=True)
        assert relaxed.predecessors(1) == []

    def test_rz_through_control(self):
        circuit = Circuit(2).rz(0.5, 0).cnot(0, 1)
        relaxed = DependencyGraph(circuit, commutation=True)
        assert relaxed.predecessors(1) == []

    def test_h_blocks(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        relaxed = DependencyGraph(circuit, commutation=True)
        assert relaxed.predecessors(1) == [0]

    def test_opposite_direction_cnots_ordered(self):
        circuit = Circuit(2).cnot(0, 1).cnot(1, 0)
        relaxed = DependencyGraph(circuit, commutation=True)
        assert relaxed.predecessors(1) == [0]

    def test_block_boundary_orders_across(self):
        # cnot(0,1); cnot(0,2)  [commuting block on q0]; h(0) ends it.
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).h(0)
        relaxed = DependencyGraph(circuit, commutation=True)
        assert set(relaxed.predecessors(2)) == {0, 1}

    def test_edges_subset_of_strict_order(self):
        from repro.workloads import random_circuit

        circuit = random_circuit(5, 25, seed=3)
        for earlier, later in relaxed_dependencies(circuit):
            assert earlier < later


class TestRelaxedSemantics:
    """Linearising the relaxed DAG must preserve the unitary."""

    @pytest.mark.parametrize("seed", range(6))
    def test_any_topological_order_is_equivalent(self, seed):
        import networkx as nx

        from repro.workloads import random_circuit

        circuit = random_circuit(4, 18, seed=seed)
        relaxed = DependencyGraph(circuit, commutation=True)
        # A deliberately different linearisation: reverse-lexicographic.
        order = list(
            nx.lexicographical_topological_sort(
                relaxed.graph, key=lambda n: -n
            )
        )
        reordered = Circuit(
            circuit.num_qubits, [circuit.gates[i] for i in order]
        )
        assert equivalent_circuits(circuit, reordered)

    @pytest.mark.parametrize("seed", range(4))
    def test_commutation_aware_routing_equivalent(self, seed):
        from repro.devices import ibm_qx5
        from repro.mapping.routing import route_sabre
        from repro.workloads import random_circuit

        device = ibm_qx5()
        circuit = random_circuit(8, 30, seed=seed, two_qubit_fraction=0.6)
        result = route_sabre(circuit, device, commutation=True)
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )

    def test_commutation_reduces_swaps_on_qft(self):
        from repro.devices import linear_device
        from repro.mapping.routing import route_sabre
        from repro.workloads import qft

        device = linear_device(8)
        circuit = qft(8)
        strict = route_sabre(circuit, device)
        relaxed = route_sabre(circuit, device, commutation=True)
        assert relaxed.added_swaps <= strict.added_swaps
