"""Unit tests for repro.mapping.placement."""

import pytest

from repro.core import Circuit
from repro.devices import grid_device, linear_device
from repro.mapping.placement import (
    FREE,
    PLACERS,
    Placement,
    assignment_placement,
    exhaustive_placement,
    get_placer,
    greedy_placement,
    placement_cost,
    random_placement,
    routed_placement,
    trivial_placement,
)


class TestPlacementObject:
    def test_trivial(self):
        placement = Placement.trivial(4, 2)
        assert placement.phys(0) == 0
        assert placement.prog(3) == FREE  # dummy slot
        assert placement.prog(1) == 1

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Placement([0, 0, 1])

    def test_rejects_bad_num_program(self):
        with pytest.raises(ValueError):
            Placement([0, 1], num_program=3)

    def test_from_partial(self):
        placement = Placement.from_partial({0: 3, 1: 1}, 2, 4)
        assert placement.phys(0) == 3
        assert placement.phys(1) == 1
        # Dummies fill the remaining physical qubits.
        assert sorted(placement.prog_to_phys()) == [0, 1, 2, 3]

    def test_from_partial_requires_full_cover(self):
        with pytest.raises(ValueError):
            Placement.from_partial({0: 1}, 2, 3)

    def test_from_partial_requires_injective(self):
        with pytest.raises(ValueError):
            Placement.from_partial({0: 1, 1: 1}, 2, 3)

    def test_apply_swap(self):
        placement = Placement.trivial(3, 3)
        placement.apply_swap(0, 2)
        assert placement.phys(0) == 2
        assert placement.phys(2) == 0
        assert placement.prog(2) == 0

    def test_swap_involving_free_qubit(self):
        placement = Placement.trivial(3, 2)
        placement.apply_swap(1, 2)
        assert placement.phys(1) == 2
        assert placement.prog(1) == FREE

    def test_phys_to_prog_is_papers_array(self):
        placement = Placement.from_partial({0: 2, 1: 0}, 2, 3)
        assert placement.phys_to_prog() == [1, FREE, 0]

    def test_copy_independent(self):
        a = Placement.trivial(3)
        b = a.copy()
        b.apply_swap(0, 1)
        assert a.phys(0) == 0 and b.phys(0) == 1

    def test_key_hashable(self):
        assert Placement.trivial(3).key() == (0, 1, 2)

    def test_permutation_to(self):
        initial = Placement.trivial(3)
        final = initial.copy()
        final.apply_swap(0, 1)
        sigma = initial.permutation_to(final)
        # State initially on physical 0 ends on physical 1.
        assert sigma == [1, 0, 2]

    def test_permutation_to_size_mismatch(self):
        with pytest.raises(ValueError):
            Placement.trivial(2).permutation_to(Placement.trivial(3))

    def test_equality_and_repr(self):
        assert Placement.trivial(3) == Placement.trivial(3)
        assert "q0->Q0" in repr(Placement.trivial(2))


class TestPlacementCost:
    def test_zero_when_all_adjacent(self):
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2)
        assert placement_cost(circuit, device, Placement.trivial(3)) == 0

    def test_counts_excess_distance_weighted(self):
        device = linear_device(4)
        circuit = Circuit(4).cnot(0, 3).cnot(0, 3)
        # distance 3, excess 2, weight 2 -> 4.
        assert placement_cost(circuit, device, Placement.trivial(4)) == 4


class TestStrategies:
    def _stress(self):
        # A star interaction graph: qubit 0 talks to everyone.
        circuit = Circuit(4)
        for q in (1, 2, 3):
            circuit.cnot(0, q)
            circuit.cnot(0, q)
        return circuit

    def test_trivial(self):
        device = linear_device(5)
        placement = trivial_placement(Circuit(3), device)
        assert placement.phys(0) == 0 and placement.num_program == 3

    def test_fit_check(self):
        with pytest.raises(ValueError):
            trivial_placement(Circuit(6), linear_device(5))

    def test_random_is_seeded(self):
        device = linear_device(5)
        circuit = self._stress()
        a = random_placement(circuit, device, seed=3)
        b = random_placement(circuit, device, seed=3)
        assert a == b

    def test_greedy_centres_star_hub(self):
        device = linear_device(5)
        placement = greedy_placement(self._stress(), device)
        # The hub should not land on a chain endpoint.
        assert placement.phys(0) in (1, 2, 3)

    def test_assignment_not_worse_than_greedy(self):
        device = grid_device(3, 3)
        circuit = self._stress()
        greedy_cost = placement_cost(circuit, device, greedy_placement(circuit, device))
        assignment_cost = placement_cost(
            circuit, device, assignment_placement(circuit, device)
        )
        assert assignment_cost <= greedy_cost

    def test_exhaustive_is_optimal(self):
        device = linear_device(4)
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2).cnot(0, 2)
        best = exhaustive_placement(circuit, device)
        best_cost = placement_cost(circuit, device, best)
        # Verify against assignment (upper bound) and the theoretical
        # minimum for a triangle on a line (one pair must be distance 2).
        assert best_cost == 1

    def test_exhaustive_guards_search_space(self):
        with pytest.raises(ValueError):
            exhaustive_placement(Circuit(9).cnot(0, 1), grid_device(4, 4))

    def test_annealing_seeded_and_competitive(self):
        from repro.mapping.placement import annealing_placement

        device = grid_device(3, 3)
        circuit = self._stress()
        a = annealing_placement(circuit, device, seed=5)
        b = annealing_placement(circuit, device, seed=5)
        assert a == b  # deterministic given the seed
        annealed = placement_cost(circuit, device, a)
        greedy_cost = placement_cost(
            circuit, device, greedy_placement(circuit, device)
        )
        assert annealed <= greedy_cost  # starts from greedy, never worse

    def test_annealing_zero_steps_returns_greedy(self):
        from repro.mapping.placement import annealing_placement

        device = linear_device(4)
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2)
        placement = annealing_placement(circuit, device, steps=0)
        assert placement_cost(circuit, device, placement) == placement_cost(
            circuit, device, greedy_placement(circuit, device)
        )

    def test_routed_placement_at_least_as_good(self):
        from repro.mapping.routing import route

        device = grid_device(3, 3)
        circuit = Circuit(4).cnot(0, 1).cnot(1, 2).cnot(2, 3).cnot(3, 0).cnot(0, 2)
        base = route(circuit, device, "sabre", assignment_placement(circuit, device))
        tuned = route(circuit, device, "sabre", routed_placement(circuit, device))
        assert tuned.added_swaps <= base.added_swaps

    def test_registry(self):
        assert set(PLACERS) == {
            "trivial", "random", "greedy", "assignment", "annealing",
            "spectral", "routed", "exhaustive",
        }
        assert get_placer("greedy") is greedy_placement
        with pytest.raises(KeyError):
            get_placer("magic")
