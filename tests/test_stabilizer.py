"""Tests for the CHP stabilizer-tableau simulator."""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Circuit
from repro.core.gates import Gate
from repro.sim import StabilizerState, simulate


def _z_expectation_sv(state: np.ndarray, qubits, n: int) -> float:
    probs = np.abs(state) ** 2
    expectation = 0.0
    for index, p in enumerate(probs):
        bits = format(index, f"0{n}b")
        parity = sum(int(bits[q]) for q in qubits) % 2
        expectation += p * (1 - 2 * parity)
    return expectation


def _random_clifford(n: int, gates: int, seed: int) -> Circuit:
    rng = random.Random(seed)
    circuit = Circuit(n)
    for _ in range(gates):
        kind = rng.choice(["h", "s", "sdg", "x", "y", "z", "cnot", "cz", "swap"])
        if kind in ("cnot", "cz", "swap"):
            a, b = rng.sample(range(n), 2)
            getattr(circuit, kind)(a, b)
        else:
            getattr(circuit, kind)(rng.randrange(n))
    return circuit


class TestBasics:
    def test_initial_state_is_all_zero(self):
        state = StabilizerState(3)
        for q in range(3):
            assert state.z_expectation([q]) == 1
            assert state.copy().measure(q) == 0

    def test_x_flips(self):
        state = StabilizerState(2)
        state.apply(Gate("x", (0,)))
        assert state.measure(0) == 1
        assert state.measure(1) == 0

    def test_h_gives_random_outcome(self):
        state = StabilizerState(1, np.random.default_rng(0))
        state.apply(Gate("h", (0,)))
        assert state.z_expectation([0]) == 0
        outcomes = {StabilizerState(1, np.random.default_rng(s)).apply(
            Gate("h", (0,))).measure(0) for s in range(16)}
        assert outcomes == {0, 1}

    def test_measurement_repeats_after_collapse(self):
        state = StabilizerState(1, np.random.default_rng(3))
        state.apply(Gate("h", (0,)))
        first = state.measure(0)
        for _ in range(3):
            assert state.measure(0) == first

    def test_bell_correlations(self):
        state = StabilizerState(2, np.random.default_rng(5))
        state.run(Circuit(2).h(0).cnot(0, 1))
        assert state.z_expectation([0, 1]) == 1
        assert state.z_expectation([0]) == 0
        a, b = state.measure(0), state.measure(1)
        assert a == b

    def test_ghz_counts(self):
        state = StabilizerState(3, np.random.default_rng(6))
        state.run(Circuit(3).h(0).cnot(0, 1).cnot(1, 2))
        counts = state.sample_counts(40)
        assert set(counts) <= {"000", "111"}

    def test_prep_z_resets(self):
        state = StabilizerState(1, np.random.default_rng(7))
        state.apply(Gate("x", (0,)))
        state.apply(Gate("prep_z", (0,)))
        assert state.z_expectation([0]) == 1

    def test_conditioned_gate(self):
        state = StabilizerState(2, np.random.default_rng(8))
        state.apply(Gate("x", (0,)))
        state.apply(Gate("measure", (0,)))
        state.apply(Gate("x", (1,), condition=(0, 1)))
        assert state.measure(1) == 1

    def test_condition_on_unmeasured_raises(self):
        state = StabilizerState(1)
        with pytest.raises(RuntimeError):
            state.apply(Gate("x", (0,), condition=(0, 1)))

    def test_non_clifford_rejected(self):
        state = StabilizerState(1)
        with pytest.raises(ValueError):
            state.apply(Gate("t", (0,)))
        with pytest.raises(ValueError):
            state.apply(Gate("rx", (0,), (0.3,)))

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            StabilizerState(2).run(Circuit(3))


class TestAgainstStatevector:
    @pytest.mark.parametrize("seed", range(12))
    def test_z_string_expectations_agree(self, seed):
        n = 4
        circuit = _random_clifford(n, 18, seed)
        sv = simulate(circuit)
        tableau = StabilizerState(n, np.random.default_rng(seed))
        tableau.run(circuit)
        for size in (1, 2, 3):
            for qubits in itertools.combinations(range(n), size):
                expected = _z_expectation_sv(sv, qubits, n)
                got = tableau.z_expectation(qubits)
                assert abs(expected - got) < 1e-9, (seed, qubits)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_seeds(self, seed):
        n = 3
        circuit = _random_clifford(n, 12, seed)
        sv = simulate(circuit)
        tableau = StabilizerState(n, np.random.default_rng(seed))
        tableau.run(circuit)
        for q in range(n):
            expected = _z_expectation_sv(sv, (q,), n)
            assert abs(expected - tableau.z_expectation((q,))) < 1e-9

    def test_deterministic_measurements_agree(self):
        circuit = Circuit(3).h(0).cnot(0, 1).cnot(0, 2).cnot(0, 1).h(0)
        # This circuit is |0> on qubit 0? run both and compare where
        # the statevector says the marginal is deterministic.
        sv = simulate(circuit)
        tableau = StabilizerState(3, np.random.default_rng(1))
        tableau.run(circuit)
        for q in range(3):
            marginal = _z_expectation_sv(sv, (q,), 3)
            if abs(abs(marginal) - 1.0) < 1e-9:
                expected = 0 if marginal > 0 else 1
                assert tableau.copy().measure(q) == expected


class TestScaling:
    def test_fifty_qubits_run_fast(self):
        n = 50
        circuit = Circuit(n).h(0)
        for q in range(n - 1):
            circuit.cnot(q, q + 1)
        state = StabilizerState(n, np.random.default_rng(2))
        state.run(circuit)
        assert state.z_expectation(list(range(n))) in (-1, 1)
        assert state.z_expectation([0]) == 0

    def test_d5_surface_code_cycle(self):
        from repro.qec import RotatedSurfaceCode, SyndromeExtractor

        code = RotatedSurfaceCode(5)
        assert code.num_qubits == 49
        extractor = SyndromeExtractor(code, seed=1, backend="stabilizer")
        reference = extractor.establish_reference()
        for stabilizer in code.z_stabilizers():
            assert reference[stabilizer.ancilla] == 0
        assert extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}

    def test_d5_error_correction(self):
        from repro.qec import MatchingDecoder, RotatedSurfaceCode, SyndromeExtractor

        code = RotatedSurfaceCode(5)
        decoder = MatchingDecoder(code)
        for victim in (0, 12, 24):
            extractor = SyndromeExtractor(code, seed=victim, backend="stabilizer")
            extractor.establish_reference()
            extractor.inject("x", victim)
            correction = decoder.decode(extractor.syndrome())
            extractor.apply_correction("x", correction["X"])
            extractor.syndrome()
            assert extractor.syndrome() == {"X": frozenset(), "Z": frozenset()}
            assert extractor.logical_z_expectation() == 1.0

    def test_backends_agree_on_d3(self):
        from repro.qec import RotatedSurfaceCode, SyndromeExtractor

        code = RotatedSurfaceCode(3)
        for backend in ("statevector", "stabilizer"):
            extractor = SyndromeExtractor(code, seed=9, backend=backend)
            extractor.establish_reference()
            extractor.inject("x", 4)
            syndrome = extractor.syndrome()
            assert sorted(syndrome["Z"]) == [12, 13], backend

    def test_unknown_backend(self):
        from repro.qec import RotatedSurfaceCode, SyndromeExtractor

        with pytest.raises(ValueError):
            SyndromeExtractor(RotatedSurfaceCode(3), backend="quantum")
