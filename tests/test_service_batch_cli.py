"""End-to-end tests for ``repro batch`` (the service CLI surface)."""

import io
import json

import pytest

from repro.cli import main
from repro.qasm import to_openqasm
from repro.workloads import ghz, random_circuit


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def manifest_dir(tmp_path):
    for i, seed in enumerate([1, 2]):
        circuit = random_circuit(5, 12, seed=seed, two_qubit_fraction=0.6)
        (tmp_path / f"c{i}.qasm").write_text(to_openqasm(circuit))
    manifest = {
        "defaults": {"router": "sabre"},
        "circuits": ["c0.qasm", "c1.qasm"],
        "devices": ["ibm_qx4"],
        "routers": ["sabre", "astar"],
        "jobs": [
            {
                "circuit": "c0.qasm",
                "device": "ibm_qx4",
                "config": {"router": "naive"},
                "id": "explicit/naive",
            }
        ],
    }
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    return tmp_path


class TestBatchManifest:
    def test_end_to_end_with_cache_and_report(self, manifest_dir):
        cache_dir = manifest_dir / "cache"
        report_path = manifest_dir / "report.json"
        code, text = _run(
            [
                "batch",
                str(manifest_dir / "manifest.json"),
                "--cache-dir",
                str(cache_dir),
                "--json",
                str(report_path),
            ]
        )
        assert code == 0
        assert "5/5 ok" in text
        assert "explicit/naive" in text
        assert "c1.qasm@ibm_qx4/astar" in text

        report = json.loads(report_path.read_text())
        assert report["summary"] == {
            "total": 5,
            "ok": 5,
            "statuses": {"ok": 5},
            "seconds": report["summary"]["seconds"],
            "throughput": report["summary"]["throughput"],
        }
        assert len(report["jobs"]) == 5
        assert all(j["status"] == "ok" for j in report["jobs"])
        assert report["service_stats"]["cache"]["puts"] == 5
        assert list(cache_dir.glob("*.json"))

        # Second run over the same cache dir: everything from disk.
        code, text = _run(
            [
                "batch",
                str(manifest_dir / "manifest.json"),
                "--cache-dir",
                str(cache_dir),
            ]
        )
        assert code == 0
        assert "hit rate 100%" in text
        assert text.count(" disk ") == 5

    def test_limit(self, manifest_dir):
        code, text = _run(
            ["batch", str(manifest_dir / "manifest.json"), "--limit", "2"]
        )
        assert code == 0
        assert "2/2 ok" in text

    def test_no_cache_flag(self, manifest_dir):
        for _ in range(2):
            code, text = _run(
                ["batch", str(manifest_dir / "manifest.json"), "--no-cache"]
            )
            assert code == 0
            assert "hit rate 0%" in text

    def test_explicit_jobs_only_manifest(self, tmp_path):
        (tmp_path / "ghz.qasm").write_text(to_openqasm(ghz(4)))
        manifest = {
            "jobs": [
                {"circuit": "ghz.qasm", "device": "ibm_qx4"},
                {
                    "circuit": "ghz.qasm",
                    "device": "ibm_qx5",
                    "config": {"router": "astar", "schedule": None},
                },
            ]
        }
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest))
        code, text = _run(["batch", str(path)])
        assert code == 0
        assert "2/2 ok" in text

    def test_device_json_file_in_manifest(self, tmp_path):
        from repro.devices import get_device

        (tmp_path / "chip.json").write_text(
            json.dumps(get_device("ibm_qx4").to_dict())
        )
        (tmp_path / "ghz.qasm").write_text(to_openqasm(ghz(3)))
        manifest = {"circuits": ["ghz.qasm"], "devices": ["chip.json"]}
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest))
        code, text = _run(["batch", str(path)])
        assert code == 0
        assert "1/1 ok" in text


class TestBatchResilienceFlags:
    def test_inline_fault_plan_degrades_but_exits_zero(self, manifest_dir):
        # A raise-fault on every sabre routing attempt degrades those
        # jobs to the fallback router; degraded counts as completed, so
        # the exit code stays 0 and the summary breaks statuses down.
        plan = json.dumps({
            "faults": [{"stage": "routing", "action": "raise",
                        "router": "sabre", "times": None}],
        })
        code, text = _run(
            [
                "batch",
                str(manifest_dir / "manifest.json"),
                "--jobs", "1",
                "--faults", plan,
            ]
        )
        assert code == 0
        assert "degraded" in text
        assert "5/5 ok" not in text

    def test_fault_plan_file(self, manifest_dir):
        path = manifest_dir / "plan.json"
        path.write_text(json.dumps({
            "faults": [{"stage": "routing", "action": "raise",
                        "router": "sabre", "times": None}],
        }))
        code, text = _run(
            [
                "batch",
                str(manifest_dir / "manifest.json"),
                "--jobs", "1",
                "--faults", str(path),
            ]
        )
        assert code == 0
        assert "degraded" in text

    def test_bad_fault_plan_is_usage_error(self, manifest_dir, capsys):
        code, _ = _run(
            [
                "batch",
                str(manifest_dir / "manifest.json"),
                "--faults", '{"faults": [{"stage": "x", "action": "bad"}]}',
            ]
        )
        assert code == 2
        assert "bad fault plan" in capsys.readouterr().err

    def test_deadline_flag_accepted(self, manifest_dir):
        # A generous deadline must not change outcomes; jobs stay ok.
        code, text = _run(
            [
                "batch",
                str(manifest_dir / "manifest.json"),
                "--jobs", "1",
                "--deadline", "30",
            ]
        )
        assert code == 0
        assert "5/5 ok" in text


class TestBatchErrors:
    def test_missing_manifest(self, capsys):
        code, _ = _run(["batch", "/nonexistent/manifest.json"])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_invalid_manifest_json(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text("{broken")
        code, _ = _run(["batch", str(path)])
        assert code == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_manifest_with_missing_circuit(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps({"circuits": ["nope.qasm"], "devices": ["ibm_qx4"]})
        )
        code, _ = _run(["batch", str(path)])
        assert code == 2
        assert "nope.qasm" in capsys.readouterr().err

    def test_manifest_with_unknown_device(self, tmp_path, capsys):
        (tmp_path / "ghz.qasm").write_text(to_openqasm(ghz(3)))
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps({"circuits": ["ghz.qasm"], "devices": ["sycamore"]})
        )
        code, _ = _run(["batch", str(path)])
        assert code == 2
        assert "sycamore" in capsys.readouterr().err

    def test_no_manifest_and_no_corpus(self, capsys):
        code, _ = _run(["batch"])
        assert code == 2
        assert "manifest" in capsys.readouterr().err

    def test_bad_qasm_job_gives_nonzero_exit(self, tmp_path):
        (tmp_path / "bad.qasm").write_text("this is not qasm")
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps({"circuits": ["bad.qasm"], "devices": ["ibm_qx4"]})
        )
        code, text = _run(["batch", str(path)])
        assert code == 4
        assert "0/1 ok" in text
        assert "error:" in text


class TestBatchCorpus:
    def test_perf_corpus_limited(self, tmp_path):
        report_path = tmp_path / "r.json"
        code, text = _run(
            [
                "batch",
                "--corpus",
                "perf",
                "--limit",
                "5",
                "--json",
                str(report_path),
            ]
        )
        assert code == 0
        assert "5/5 ok" in text
        from repro.perf import corpus_jobs

        report = json.loads(report_path.read_text())
        assert report["summary"]["ok"] == 5
        # Report order is the deterministic corpus order.
        assert [j["job_id"] for j in report["jobs"]] == [
            j.job_id for j in corpus_jobs(5)
        ]
