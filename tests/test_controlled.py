"""Tests for controlled / multi-controlled gate synthesis."""

import itertools
import math

import numpy as np
import pytest

from repro.core import Circuit
from repro.core.gates import Gate, gate_matrix
from repro.decompose import (
    controlled_gate,
    controlled_unitary,
    multi_controlled_x,
    multi_controlled_z,
)
from repro.sim import allclose_up_to_global_phase, circuit_unitary


def _cu(matrix):
    full = np.eye(4, dtype=complex)
    full[2:, 2:] = matrix
    return full


class TestControlledUnitary:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "t", "sdg"])
    def test_fixed_gates(self, name):
        u = gate_matrix(name)
        circuit = Circuit(2, controlled_unitary(u, 0, 1))
        assert allclose_up_to_global_phase(circuit_unitary(circuit), _cu(u))

    def test_random_unitaries(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            a, b, c, d = rng.uniform(-math.pi, math.pi, 4)
            u = (
                np.exp(1j * d)
                * gate_matrix("rz", [a])
                @ gate_matrix("ry", [b])
                @ gate_matrix("rz", [c])
            )
            circuit = Circuit(2, controlled_unitary(u, 0, 1))
            assert allclose_up_to_global_phase(circuit_unitary(circuit), _cu(u))

    def test_identity_needs_no_gates(self):
        sequence = controlled_unitary(np.eye(2), 0, 1)
        # Two cancelling CNOTs at most; no rotations.
        assert all(g.name == "cnot" for g in sequence)

    def test_gate_budget(self):
        u = gate_matrix("h")
        sequence = controlled_unitary(u, 0, 1)
        assert sum(1 for g in sequence if g.name == "cnot") == 2
        assert len(sequence) <= 7

    def test_controlled_gate_wrapper(self):
        sequence = controlled_gate(Gate("t", (2,)), control=0)
        circuit = Circuit(3, sequence)
        expected = Circuit(3, [Gate("cp", (0, 2), (math.pi / 4,))])
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(expected)
        )

    def test_wrapper_rejects_two_qubit_gate(self):
        with pytest.raises(ValueError):
            controlled_gate(Gate("cz", (0, 1)), control=2)


class TestMultiControlledX:
    def test_single_control_is_cnot(self):
        assert multi_controlled_x([0], 1) == [Gate("cnot", (0, 1))]

    def test_double_control_is_toffoli(self):
        assert multi_controlled_x([0, 1], 2) == [Gate("toffoli", (0, 1, 2))]

    @pytest.mark.parametrize("num_controls", [3, 4])
    def test_ladder_truth_table(self, num_controls):
        ancillas = list(range(num_controls + 1, 2 * num_controls - 1))
        target = num_controls
        n = num_controls + 1 + len(ancillas)
        circuit = Circuit(n, multi_controlled_x(list(range(num_controls)), target, ancillas))
        unitary = circuit_unitary(circuit)
        for bits in itertools.product([0, 1], repeat=num_controls + 1):
            index = int("".join(map(str, bits)) + "0" * len(ancillas), 2)
            column = unitary[:, index]
            out = int(np.argmax(np.abs(column)))
            expected = list(bits)
            if all(bits[:num_controls]):
                expected[num_controls] ^= 1
            expected_index = int(
                "".join(map(str, expected)) + "0" * len(ancillas), 2
            )
            assert out == expected_index, bits
            assert abs(abs(column[out]) - 1.0) < 1e-9

    def test_ancillas_restored(self):
        """The uncompute half returns every ancilla to |0>."""
        circuit = Circuit(5, multi_controlled_x([0, 1, 2], 3, [4]))
        unitary = circuit_unitary(circuit)
        for index in range(0, 2**5, 2):  # ancilla (last qubit) = 0 inputs
            column = unitary[:, index]
            out = int(np.argmax(np.abs(column)))
            assert out % 2 == 0  # ancilla still 0

    def test_requires_enough_ancillas(self):
        with pytest.raises(ValueError):
            multi_controlled_x([0, 1, 2], 3)  # needs 1 ancilla

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            multi_controlled_x([0, 1], 1)

    def test_rejects_empty_controls(self):
        with pytest.raises(ValueError):
            multi_controlled_x([], 0)


class TestMultiControlledZ:
    def test_two_controls_matches_ccz(self):
        circuit = Circuit(3, multi_controlled_z([0, 1], 2))
        expected = np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(complex)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), expected)

    def test_symmetric_in_roles(self):
        """CCZ is symmetric: any qubit may play the 'target'."""
        a = circuit_unitary(Circuit(3, multi_controlled_z([0, 1], 2)))
        b = circuit_unitary(Circuit(3, multi_controlled_z([2, 1], 0)))
        assert allclose_up_to_global_phase(a, b)
