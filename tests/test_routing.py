"""Tests for the routers: connectivity, equivalence, and known optima."""

import pytest

from repro.core import Circuit
from repro.devices import Device, grid_device, linear_device
from repro.mapping.placement import Placement
from repro.mapping.routing import (
    ROUTERS,
    RoutingError,
    check_connectivity,
    route,
    route_astar,
    route_exact,
    route_latency,
    route_naive,
    route_sabre,
)
from repro.verify import equivalent_mapped
from repro.workloads import random_circuit

ALL_ROUTERS = ["naive", "sabre", "astar", "exact", "latency"]


def _assert_routed_ok(circuit, device, result):
    check_connectivity(result.circuit, device)
    assert result.circuit.num_qubits == device.num_qubits
    assert result.circuit.count("swap") == result.added_swaps
    assert equivalent_mapped(
        circuit, result.circuit, result.initial, result.final
    )


class TestDispatcher:
    def test_registry_complete(self):
        assert set(ROUTERS) == {
            "naive", "sabre", "astar", "exact", "latency", "reliability",
            "shuttle", "teleport", "lnn",
        }

    def test_unknown_router(self, line5, bell):
        with pytest.raises(KeyError):
            route(bell, line5, "warp")

    def test_route_checks_connectivity(self, line5, ghz3):
        result = route(ghz3, line5, "sabre")
        check_connectivity(result.circuit, line5)


class TestAdjacentGatesNeedNoSwaps:
    @pytest.mark.parametrize("router", ALL_ROUTERS)
    def test_ghz_on_line(self, router, line5):
        circuit = Circuit(5).h(0)
        for q in range(4):
            circuit.cnot(q, q + 1)
        result = route(circuit, line5, router)
        assert result.added_swaps == 0
        assert result.initial == result.final
        _assert_routed_ok(circuit, line5, result)


class TestDistantGate:
    @pytest.mark.parametrize("router", ALL_ROUTERS)
    def test_end_to_end_cnot_on_line(self, router):
        device = linear_device(4)
        circuit = Circuit(4).cnot(0, 3)
        result = route(circuit, device, router)
        assert result.added_swaps == 2  # distance 3 -> two swaps
        _assert_routed_ok(circuit, device, result)

    @pytest.mark.parametrize("router", ["sabre", "astar", "exact", "latency"])
    def test_repeated_distant_pair_swapped_once(self, router):
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 2).cnot(0, 2).cnot(0, 2)
        result = route(circuit, device, router)
        assert result.added_swaps == 1  # move once, stay adjacent
        _assert_routed_ok(circuit, device, result)

    def test_naive_keeps_placement_moving(self):
        # Naive still only pays once here because the qubits stay moved.
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 2).cnot(0, 2)
        result = route_naive(circuit, device)
        assert result.added_swaps == 1


class TestFinalPlacementTracking:
    def test_final_differs_after_swaps(self):
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 2)
        result = route(circuit, device, "sabre")
        assert result.initial != result.final

    def test_placement_respected(self):
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 1)
        placement = Placement([2, 1, 0])  # reversed
        result = route(circuit, device, "sabre", placement)
        first = next(g for g in result.circuit if g.name == "cnot")
        assert first.qubits == (2, 1)


class TestDisconnectedDevice:
    """Routing across components fails with the router's own typed error.

    Regression guard for the Device graph contract: ``shortest_path``
    raises ValueError on disconnected pairs, and every router that walks
    paths must convert that into RoutingError — callers never see a
    networkx exception type.
    """

    def _split_device(self):
        return Device("split", 4, [(0, 1), (2, 3)], ["h", "cnot"])

    @pytest.mark.parametrize("router", ["naive", "reliability"])
    def test_path_walking_routers_raise_routing_error(self, router):
        circuit = Circuit(4).cnot(0, 3)
        with pytest.raises(RoutingError, match="no path between qubits"):
            route(circuit, self._split_device(), router)

    def test_error_names_the_physical_qubits(self):
        circuit = Circuit(4).cnot(0, 3)
        placement = Placement([1, 0, 3, 2])
        with pytest.raises(RoutingError, match=r"qubits 1 and 2"):
            route_naive(circuit, self._split_device(), placement)


class TestMultiQubitGatesRejected:
    @pytest.mark.parametrize("router", ALL_ROUTERS)
    def test_toffoli_rejected(self, router, line5):
        circuit = Circuit(3).toffoli(0, 1, 2)
        with pytest.raises(RoutingError):
            route(circuit, line5, router)


class TestExactRouter:
    def test_optimality_vs_heuristics(self):
        device = grid_device(2, 3)
        for seed in range(5):
            circuit = random_circuit(5, 10, seed=seed, two_qubit_fraction=0.7)
            exact = route_exact(circuit, device)
            for heuristic in (route_sabre, route_astar):
                other = heuristic(circuit, device)
                assert exact.added_swaps <= other.added_swaps, seed

    def test_refuses_large_devices(self):
        with pytest.raises(RoutingError):
            route_exact(Circuit(2).cnot(0, 1), grid_device(3, 3))

    def test_metadata_cost_accounting(self, qx4):
        circuit = Circuit(2).cnot(1, 0)  # wrong direction on QX4? 1->0 ok
        result = route_exact(circuit, qx4)
        assert result.metadata["cost"] == 0
        flipped = route_exact(Circuit(2).cnot(0, 1), qx4)
        assert flipped.metadata["cost"] == 4  # one direction flip
        assert flipped.metadata["flips"] == 1

    def test_optimize_placement_never_worse(self, qx4):
        circuit = random_circuit(4, 8, seed=2, two_qubit_fraction=0.8)
        fixed = route_exact(circuit, qx4)
        free = route_exact(circuit, qx4, optimize_placement=True)
        assert free.metadata["cost"] <= fixed.metadata["cost"]
        _assert_routed_ok(circuit, qx4, free)

    def test_custom_costs(self):
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 2)
        result = route_exact(circuit, device, swap_cost=10, flip_cost=0)
        assert result.metadata["cost"] == 10


class TestSabreOptions:
    def test_lookahead_zero_still_correct(self, grid33):
        circuit = random_circuit(6, 15, seed=4, two_qubit_fraction=0.7)
        result = route_sabre(circuit, grid33, lookahead=0)
        _assert_routed_ok(circuit, grid33, result)

    def test_decay_disabled_still_correct(self, grid33):
        circuit = random_circuit(6, 15, seed=5, two_qubit_fraction=0.7)
        result = route_sabre(circuit, grid33, use_decay=False)
        _assert_routed_ok(circuit, grid33, result)

    def test_metadata(self, line5, ghz3):
        result = route_sabre(ghz3, line5, lookahead=7)
        assert result.metadata["lookahead"] == 7


class TestAstarOptions:
    def test_multiple_lookahead_layers(self, grid33):
        circuit = random_circuit(6, 12, seed=6, two_qubit_fraction=0.7)
        result = route_astar(circuit, grid33, lookahead_layers=3)
        _assert_routed_ok(circuit, grid33, result)

    def test_no_lookahead(self, grid33):
        circuit = random_circuit(6, 12, seed=7, two_qubit_fraction=0.7)
        result = route_astar(circuit, grid33, lookahead_layers=0)
        _assert_routed_ok(circuit, grid33, result)

    def test_interleaved_independent_layers(self):
        # Regression: gates of later DAG layers appearing early in the
        # original order must not confuse the rebuild.
        device = linear_device(5)
        circuit = Circuit(5).cnot(0, 1).cnot(0, 2).cnot(3, 4)
        result = route_astar(circuit, device)
        _assert_routed_ok(circuit, device, result)


class TestLatencyRouter:
    def test_estimates_latency(self, s17, ghz3):
        result = route_latency(ghz3, s17)
        assert result.metadata["estimated_latency"] > 0
        _assert_routed_ok(ghz3, s17, result)

    def test_latency_weight_changes_choices_but_not_correctness(self, grid33):
        circuit = random_circuit(6, 20, seed=8, two_qubit_fraction=0.7)
        for weight in (0.0, 0.5, 5.0):
            result = route_latency(circuit, grid33, latency_weight=weight)
            _assert_routed_ok(circuit, grid33, result)


class TestDisconnectedDevice:
    def test_naive_raises_cleanly(self):
        device = Device("split", 4, [(0, 1), (2, 3)], ["u", "cnot"])
        circuit = Circuit(4).cnot(0, 3)
        with pytest.raises(Exception):
            route_naive(circuit, device)
