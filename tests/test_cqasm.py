"""Tests for the cQASM parser (Fig. 2 input format)."""

import math

import pytest

from repro.core import Circuit
from repro.qasm import CqasmError, parse_cqasm, schedule_to_cqasm, to_cqasm
from repro.verify import equivalent_circuits


class TestBasics:
    def test_minimal_program(self):
        circuit = parse_cqasm(
            """
            version 1.0
            qubits 2

            h q[0]
            cnot q[0], q[1]
            """
        )
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit] == ["h", "cnot"]

    def test_comments_ignored(self):
        circuit = parse_cqasm("version 1.0\nqubits 1\n# a comment\nh q[0]  # inline\n")
        assert circuit.size() == 1

    def test_rotation_with_angle(self):
        circuit = parse_cqasm("version 1.0\nqubits 1\nrx q[0], 1.5\n")
        assert circuit.gates[0].params == (1.5,)

    def test_pi_literal(self):
        circuit = parse_cqasm("version 1.0\nqubits 1\nrz q[0], pi\n")
        assert circuit.gates[0].params[0] == pytest.approx(math.pi)

    def test_named_90_rotations(self):
        circuit = parse_cqasm(
            "version 1.0\nqubits 1\nx90 q[0]\nmx90 q[0]\nmy90 q[0]\n"
        )
        assert [g.name for g in circuit] == ["x90", "xm90", "ym90"]

    def test_measure_and_prep(self):
        circuit = parse_cqasm(
            "version 1.0\nqubits 1\nprep_z q[0]\nmeasure_z q[0]\n"
        )
        assert [g.name for g in circuit] == ["prep_z", "measure"]

    def test_toffoli(self):
        circuit = parse_cqasm(
            "version 1.0\nqubits 3\ntoffoli q[0], q[1], q[2]\n"
        )
        assert circuit.gates[0].name == "toffoli"

    def test_crk_phase_gate(self):
        circuit = parse_cqasm("version 1.0\nqubits 2\ncrk q[0], q[1], 3\n")
        gate = circuit.gates[0]
        assert gate.name == "cp"
        assert gate.params[0] == pytest.approx(math.pi / 4)

    def test_wait_ignored(self):
        circuit = parse_cqasm("version 1.0\nqubits 1\nh q[0]\nwait 3\nx q[0]\n")
        assert circuit.size() == 2


class TestBundles:
    def test_bundle_flattened(self):
        circuit = parse_cqasm(
            "version 1.0\nqubits 2\n{ x q[0] | y q[1] }\n"
        )
        assert circuit.size() == 2

    def test_bundle_overlap_rejected(self):
        with pytest.raises(CqasmError, match="overlap"):
            parse_cqasm("version 1.0\nqubits 1\n{ x q[0] | y q[0] }\n")

    def test_unterminated_bundle(self):
        with pytest.raises(CqasmError, match="unterminated"):
            parse_cqasm("version 1.0\nqubits 2\n{ x q[0] | y q[1]\n")


class TestErrors:
    def test_missing_qubits_declaration(self):
        with pytest.raises(CqasmError, match="qubits"):
            parse_cqasm("version 1.0\nh q[0]\n")

    def test_unknown_gate(self):
        with pytest.raises(CqasmError, match="unsupported gate"):
            parse_cqasm("version 1.0\nqubits 1\nwarp q[0]\n")

    def test_wrong_arity(self):
        with pytest.raises(CqasmError, match="expects"):
            parse_cqasm("version 1.0\nqubits 2\ncnot q[0]\n")

    def test_bad_parameter(self):
        with pytest.raises(CqasmError, match="bad parameter"):
            parse_cqasm("version 1.0\nqubits 1\nrx q[0], banana\n")

    def test_qubit_out_of_range(self):
        with pytest.raises(CqasmError):
            parse_cqasm("version 1.0\nqubits 1\nh q[5]\n")

    def test_error_carries_line(self):
        with pytest.raises(CqasmError, match="line 4"):
            parse_cqasm("version 1.0\nqubits 1\nh q[0]\nbad q[0]\n")


class TestBinaryControlled:
    def test_parse_positive_condition(self):
        circuit = parse_cqasm(
            "version 1.0\nqubits 2\nmeasure_z q[0]\nc-x b[0], q[1]\n"
        )
        assert circuit.gates[1].condition == (0, 1)

    def test_parse_negated_condition(self):
        circuit = parse_cqasm(
            "version 1.0\nqubits 2\nmeasure_z q[0]\nc-z !b[0], q[1]\n"
        )
        assert circuit.gates[1].condition == (0, 0)

    def test_missing_bit_operand(self):
        with pytest.raises(CqasmError, match="b\\[<bit>\\]"):
            parse_cqasm("version 1.0\nqubits 2\nc-x q[0], q[1]\n")

    def test_feedforward_roundtrip(self):
        from repro.core.gates import Gate

        circuit = Circuit(3)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        circuit.append(Gate("z", (2,), condition=(0, 0)))
        back = parse_cqasm(to_cqasm(circuit))
        assert back.gates == circuit.gates

    def test_teleported_circuit_roundtrip(self):
        from repro.devices import linear_device
        from repro.mapping.placement import Placement
        from repro.mapping.routing import route_teleport
        from repro.verify import equivalent_mapped_with_feedforward

        device = linear_device(6)
        circuit = Circuit(2).h(0).cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: 5}, 2, 6)
        result = route_teleport(circuit, device, placement)
        back = parse_cqasm(to_cqasm(result.circuit))
        assert back.gates == result.circuit.gates
        assert equivalent_mapped_with_feedforward(
            circuit, back, result.initial, result.final
        )


class TestRoundTrips:
    def test_writer_parser_roundtrip(self):
        circuit = (
            Circuit(3).h(0).t(1).cnot(0, 1).cz(1, 2)
            .rx(0.7, 2).swap(0, 2).measure(1)
        )
        back = parse_cqasm(to_cqasm(circuit))
        assert back.gates == circuit.gates

    def test_scheduled_bundle_roundtrip_is_equivalent(self, s17):
        from repro.decompose import decompose_circuit
        from repro.mapping.scheduler import asap_schedule
        from repro.workloads import fig2_circuit

        native = decompose_circuit(fig2_circuit(), s17)
        text = schedule_to_cqasm(asap_schedule(native, s17))
        back = parse_cqasm(text)
        assert back.num_qubits == native.num_qubits
        assert equivalent_circuits(native, back)
