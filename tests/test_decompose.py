"""Unit tests for repro.decompose rules and driver."""

import math

import numpy as np
import pytest

from repro.core import Circuit
from repro.core.gates import GATE_SPECS, Gate
from repro.decompose import count_native_misses, decompose_circuit, decompose_gate
from repro.decompose import rules
from repro.devices import Device, ibm_qx4, surface17
from repro.sim import allclose_up_to_global_phase, circuit_unitary
from repro.verify import equivalent_circuits


def _as_circuit(gates, n):
    return Circuit(n, gates)


class TestBasisIndependentRules:
    def test_swap_is_three_cnots(self):
        expansion = rules.expand_swap_cnot(0, 1)
        assert [g.name for g in expansion] == ["cnot"] * 3
        assert equivalent_circuits(
            Circuit(2).swap(0, 1), _as_circuit(expansion, 2)
        )

    def test_cnot_to_cz_matches_paper_fig6(self):
        expansion = rules.expand_cnot_to_cz(0, 1)
        assert [g.name for g in expansion] == ["ym90", "cz", "y90"]
        assert all(g.qubits == (1,) for g in expansion if g.name != "cz")
        assert equivalent_circuits(
            Circuit(2).cnot(0, 1), _as_circuit(expansion, 2)
        )

    def test_swap_to_cz(self):
        expansion = rules.expand_swap_to_cz(0, 1)
        assert sum(1 for g in expansion if g.name == "cz") == 3
        assert equivalent_circuits(
            Circuit(2).swap(0, 1), _as_circuit(expansion, 2)
        )

    def test_toffoli_expansion(self):
        expansion = rules.expand_toffoli(0, 1, 2)
        assert sum(1 for g in expansion if g.name == "cnot") == 6
        assert equivalent_circuits(
            Circuit(3).toffoli(0, 1, 2), _as_circuit(expansion, 3)
        )

    def test_fredkin_expansion(self):
        expansion = rules.expand_fredkin(0, 1, 2)
        assert equivalent_circuits(
            Circuit(3).fredkin(0, 1, 2), _as_circuit(expansion, 3)
        )

    @pytest.mark.parametrize("theta", [0.3, -1.7, math.pi / 2])
    def test_cp_expansion(self, theta):
        assert equivalent_circuits(
            Circuit(2).cp(theta, 0, 1),
            _as_circuit(rules.expand_cp(theta, 0, 1), 2),
        )

    @pytest.mark.parametrize("theta", [0.9, -0.4])
    def test_crz_expansion(self, theta):
        assert equivalent_circuits(
            Circuit(2, [Gate("crz", (0, 1), (theta,))]),
            _as_circuit(rules.expand_crz(theta, 0, 1), 2),
        )

    def test_flip_cnot_reverses_roles(self):
        expansion = rules.flip_cnot(0, 1)
        inner = [g for g in expansion if g.name == "cnot"]
        assert inner[0].qubits == (1, 0)
        assert equivalent_circuits(
            Circuit(2).cnot(0, 1), _as_circuit(expansion, 2)
        )

    def test_rz_as_xy(self):
        theta = 1.234
        assert equivalent_circuits(
            Circuit(1).rz(theta, 0), _as_circuit(rules.rz_as_xy(theta, 0), 1)
        )

    def test_hadamard_as_xy(self):
        assert equivalent_circuits(
            Circuit(1).h(0), _as_circuit(rules.hadamard_as_xy(0), 1)
        )


class TestIBMRules:
    def test_every_fixed_gate_has_rule_and_is_correct(self):
        for name, rule in rules.IBM_1Q_RULES.items():
            spec = GATE_SPECS[name]
            params = tuple(0.7 for _ in range(spec.num_params))
            original = Circuit(1, [Gate(name, (0,), params)])
            expansion = _as_circuit(rule(params, (0,)), 1)
            assert equivalent_circuits(original, expansion), name
            assert all(g.name == "u" for g in expansion.gates), name


class TestSurfaceRules:
    def test_every_fixed_gate_has_rule_and_is_correct(self):
        for name, rule in rules.SURFACE_1Q_RULES.items():
            spec = GATE_SPECS[name]
            params = tuple(0.6 * (i + 1) for i in range(spec.num_params))
            original = Circuit(1, [Gate(name, (0,), params)])
            expansion = _as_circuit(rule(params, (0,)), 1)
            assert equivalent_circuits(original, expansion), name

    def test_rules_only_use_xy_rotations(self):
        allowed = {"rx", "ry", "x", "y", "x90", "xm90", "y90", "ym90"}
        for name, rule in rules.SURFACE_1Q_RULES.items():
            spec = GATE_SPECS[name]
            params = tuple(0.6 for _ in range(spec.num_params))
            for gate in rule(params, (0,)):
                assert gate.name in allowed, (name, gate.name)


class TestDecomposer:
    def test_native_gates_pass_through(self, qx4):
        circuit = Circuit(2).u(0.1, 0.2, 0.3, 0).cnot(0, 1)
        assert decompose_circuit(circuit, qx4) == circuit

    def test_full_lowering_ibm(self, qx4):
        circuit = Circuit(3).h(0).toffoli(0, 1, 2).swap(1, 2).t(2)
        lowered = decompose_circuit(circuit, qx4)
        assert all(g.name in ("u", "cnot") for g in lowered if g.is_unitary)
        assert equivalent_circuits(circuit, lowered)

    def test_full_lowering_surface(self, s17):
        circuit = Circuit(3).h(0).cnot(0, 1).t(1).swap(1, 2).cz(0, 2)
        lowered = decompose_circuit(circuit, s17)
        assert all(s17.is_native(g) for g in lowered.gates)
        assert equivalent_circuits(circuit, lowered)

    def test_measure_and_barrier_pass_through(self, qx4):
        circuit = Circuit(1).h(0).measure(0).barrier()
        lowered = decompose_circuit(circuit, qx4)
        assert lowered.count("measure") == 1

    def test_fallback_euler_synthesis(self, s17):
        # 'u' has a direct rule; 'crz' forces the cnot route; random 'u'
        # exercises the rz_as_xy path with three angles.
        circuit = Circuit(1).u(1.1, 2.2, -0.7, 0)
        lowered = decompose_circuit(circuit, s17)
        assert all(s17.is_native(g) for g in lowered.gates)
        assert equivalent_circuits(circuit, lowered)

    def test_count_native_misses(self, qx4):
        circuit = Circuit(2).h(0).cnot(0, 1).swap(0, 1)
        assert count_native_misses(circuit, qx4) == 2  # h and swap

    def test_decompose_gate_single_step(self, s17):
        steps = decompose_gate(Gate("swap", (0, 1)), s17)
        assert len(steps) == 9  # three CZ-based CNOTs

    def test_non_universal_device_raises(self):
        crippled = Device("broken", 2, [(0, 1)], ["x"], two_qubit_gate="cz")
        with pytest.raises(ValueError):
            decompose_circuit(Circuit(2).h(0).cnot(0, 1), crippled)

    def test_accumulated_global_phase_is_tolerated(self, qx4):
        # S = T T; each T lowers with its own phase; equivalence must
        # still hold for the composite.
        circuit = Circuit(1).t(0).t(0)
        lowered = decompose_circuit(circuit, qx4)
        assert allclose_up_to_global_phase(
            circuit_unitary(Circuit(1).s(0)), circuit_unitary(lowered)
        )
