"""Parity of the flat-array DAG adjacency with a networkx reference.

The hot-path overhaul replaced per-call networkx traversals in
:class:`repro.core.dag.DependencyGraph` with tuple adjacency built once
at construction.  These tests rebuild the dependency relation
independently — straight from the qubit-line rule (and from
:func:`repro.core.commutation.relaxed_dependencies` for the commutation
mode) — into a networkx digraph and assert the flat arrays agree on
predecessors, successors and the front layer, on a spread of random
circuits.
"""

import networkx as nx
import pytest

from repro.core.commutation import relaxed_dependencies
from repro.core.dag import DependencyGraph
from repro.workloads import random_circuit


def _reference_graph(circuit) -> nx.DiGraph:
    """Qubit-line dependencies built independently of DependencyGraph."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(circuit.gates)))
    last_on_qubit: dict[int, int] = {}
    for index, gate in enumerate(circuit.gates):
        qubits = gate.qubits or tuple(range(circuit.num_qubits))
        if gate.condition is not None:
            qubits = tuple(dict.fromkeys(qubits + (gate.condition[0],)))
        for qubit in qubits:
            if qubit in last_on_qubit:
                graph.add_edge(last_on_qubit[qubit], index)
            last_on_qubit[qubit] = index
    return graph


def _reference_commutation_graph(circuit) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(circuit.gates)))
    graph.add_edges_from(relaxed_dependencies(circuit))
    return graph


def _assert_parity(dag: DependencyGraph, reference: nx.DiGraph) -> None:
    assert len(dag) == reference.number_of_nodes()
    for index in range(len(dag)):
        assert dag.predecessors(index) == sorted(reference.predecessors(index))
        assert dag.successors(index) == sorted(reference.successors(index))
    expected_front = sorted(
        node for node in reference.nodes if reference.in_degree(node) == 0
    )
    assert sorted(dag.front_layer()) == expected_front


@pytest.mark.parametrize("seed", [0, 1, 7, 23])
@pytest.mark.parametrize("num_gates", [1, 20, 80])
def test_qubit_line_adjacency_matches_networkx(seed, num_gates):
    circuit = random_circuit(6, num_gates, seed=seed, two_qubit_fraction=0.6)
    dag = DependencyGraph(circuit)
    _assert_parity(dag, _reference_graph(circuit))


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_commutation_adjacency_matches_networkx(seed):
    circuit = random_circuit(5, 40, seed=seed, two_qubit_fraction=0.7)
    dag = DependencyGraph(circuit, commutation=True)
    _assert_parity(dag, _reference_commutation_graph(circuit))


def test_lazy_graph_view_agrees_with_arrays():
    circuit = random_circuit(5, 30, seed=5, two_qubit_fraction=0.6)
    dag = DependencyGraph(circuit)
    view = dag.graph  # lazily materialised networkx mirror
    for index in range(len(dag)):
        assert sorted(view.predecessors(index)) == dag.predecessors(index)
        assert sorted(view.successors(index)) == dag.successors(index)


def test_front_layer_shrinks_as_gates_complete():
    circuit = random_circuit(4, 15, seed=2, two_qubit_fraction=0.5)
    dag = DependencyGraph(circuit)
    reference = _reference_graph(circuit)
    done: set[int] = set()
    for index in list(nx.topological_sort(reference)):
        ready = {
            node
            for node in reference.nodes
            if node not in done
            and all(p in done for p in reference.predecessors(node))
        }
        computed = {
            node
            for node in range(len(dag))
            if node not in done
            and all(p in done for p in dag.predecessors(node))
        }
        assert computed == ready
        done.add(index)
