"""Tests for repro.metrics."""

from repro.core import Circuit
from repro.core.pipeline import compile_circuit
from repro.metrics import (
    CircuitMetrics,
    circuit_metrics,
    format_table,
    mapping_overhead,
)
from repro.sim.noise import NoiseModel
from repro.workloads import ghz


class TestCircuitMetrics:
    def test_counts(self):
        circuit = Circuit(3).h(0).cnot(0, 1).cnot(1, 2).t(2)
        metrics = circuit_metrics(circuit)
        assert metrics == CircuitMetrics(
            gates=4, two_qubit_gates=2, depth=4, two_qubit_depth=2
        )

    def test_empty(self):
        metrics = circuit_metrics(Circuit(2))
        assert metrics.gates == 0 and metrics.depth == 0


class TestOverheadReport:
    def test_basic_fields(self, qx4):
        result = compile_circuit(ghz(4), qx4, placer="greedy")
        report = mapping_overhead(result)
        assert report.added_swaps == result.added_swaps
        assert report.native_gates == result.native.size()
        assert report.latency_cycles == result.latency
        assert report.success_probability is None

    def test_custom_label(self, qx4):
        result = compile_circuit(ghz(4), qx4)
        assert mapping_overhead(result, label="xyz").label == "xyz"

    def test_default_label_names_blocks(self, qx4):
        result = compile_circuit(ghz(4), qx4, placer="greedy", router="sabre")
        assert mapping_overhead(result).label == "greedy+sabre"

    def test_success_probability_with_noise(self, qx4):
        result = compile_circuit(ghz(4), qx4)
        report = mapping_overhead(result, noise=NoiseModel())
        assert 0.0 < report.success_probability < 1.0

    def test_success_probability_without_schedule(self, qx4):
        result = compile_circuit(ghz(4), qx4, schedule=None)
        report = mapping_overhead(result, noise=NoiseModel())
        assert report.success_probability is not None


class TestFormatTable:
    def test_alignment_and_content(self, qx4):
        rows = [
            mapping_overhead(compile_circuit(ghz(4), qx4, router=router), label=router)
            for router in ("naive", "sabre")
        ]
        table = format_table(rows, title="ghz4 on QX4")
        assert "ghz4 on QX4" in table
        assert "naive" in table and "sabre" in table
        assert "swaps" in table

    def test_missing_success_shown_as_dash(self, qx4):
        rows = [mapping_overhead(compile_circuit(ghz(4), qx4))]
        assert " -" in format_table(rows)
