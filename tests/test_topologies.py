"""Tests for the concrete topologies, pinned to the paper's statements."""

import networkx as nx
import pytest

from repro.devices import get_device, ibm_qx4, ibm_qx5, surface7, surface17
from repro.devices.topologies import (
    SURFACE7_ROWS,
    SURFACE17_ROWS,
    grid_edges,
    heavy_hex_edges,
    linear_edges,
    surface_edges,
)


class TestIBMQX4:
    def test_five_qubits_six_connections(self, qx4):
        assert qx4.num_qubits == 5
        assert len(qx4.undirected_edges()) == 6

    def test_directed(self, qx4):
        assert not qx4.symmetric
        # Section IV: CNOT control Q3 target Q4 is NOT allowed...
        assert not qx4.has_edge(3, 4)
        # ...but the connection exists with Q4 as control.
        assert qx4.has_edge(4, 3)

    def test_every_qubit_reachable(self, qx4):
        assert nx.is_connected(qx4.undirected)

    def test_native_set_is_u_plus_cnot(self, qx4):
        assert "u" in qx4.native_gates and "cnot" in qx4.native_gates


class TestIBMQX5:
    def test_sixteen_qubits(self, qx5):
        assert qx5.num_qubits == 16
        assert len(qx5.undirected_edges()) == 22

    def test_connected(self, qx5):
        assert nx.is_connected(qx5.undirected)

    def test_directed(self, qx5):
        assert not qx5.symmetric


class TestSurface17:
    def test_seventeen_qubits(self, s17):
        assert s17.num_qubits == 17

    def test_paper_interaction_facts(self, s17):
        # Section V: "qubits 1 and 5 can interact ... realising a
        # two-qubit gate between qubits 1 and 7 is not possible".
        assert s17.connected(1, 5)
        assert not s17.connected(1, 7)

    def test_symmetric_cz_device(self, s17):
        assert s17.symmetric
        assert s17.two_qubit_gate == "cz"

    def test_lattice_is_bipartite(self, s17):
        """No triangles: every edge joins a short row to a long row."""
        assert nx.is_bipartite(s17.undirected)

    def test_connected(self, s17):
        assert nx.is_connected(s17.undirected)

    def test_three_frequency_groups_cover_all_qubits(self, s17):
        groups = s17.constraints.frequency_group
        assert set(groups) == set(range(17))
        assert set(groups.values()) == {0, 1, 2}

    def test_coupled_qubits_have_different_frequencies(self, s17):
        """Required by the CZ mechanism of Section V."""
        groups = s17.constraints.frequency_group
        for a, b in s17.undirected_edges():
            assert groups[a] != groups[b], (a, b)

    def test_paper_feedline_group(self, s17):
        """Section V names the feedline {0, 2, 3, 6, 9, 12} explicitly."""
        feedline = s17.constraints.feedline
        group0 = {q for q, f in feedline.items() if f == feedline[0]}
        assert group0 == {0, 2, 3, 6, 9, 12}

    def test_feedlines_cover_all_qubits(self, s17):
        assert set(s17.constraints.feedline) == set(range(17))

    def test_durations_match_qmap_paper(self, s17):
        assert s17.cycle_time_ns == 20.0
        assert s17.duration("y90") == 1
        assert s17.duration("cz") == 2
        assert s17.duration("measure") == 30


class TestSurface7:
    def test_seven_qubits_eight_connections(self, s7):
        assert s7.num_qubits == 7
        assert len(s7.undirected_edges()) == 8

    def test_bipartite_and_connected(self, s7):
        assert nx.is_bipartite(s7.undirected)
        assert nx.is_connected(s7.undirected)

    def test_has_constraints(self, s7):
        assert s7.constraints is not None
        assert set(s7.constraints.feedline) == set(range(7))


class TestGenericBuilders:
    def test_linear(self):
        edges, positions = linear_edges(4)
        assert edges == [(0, 1), (1, 2), (2, 3)]
        assert len(positions) == 4

    def test_grid_edge_count(self):
        edges, _ = grid_edges(3, 4)
        assert len(edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_structure(self):
        device = get_device("grid", rows=2, cols=2)
        assert device.connected(0, 1) and device.connected(0, 2)
        assert not device.connected(0, 3)

    def test_surface_rows_sum(self):
        assert sum(SURFACE17_ROWS) == 17
        assert sum(SURFACE7_ROWS) == 7

    def test_surface_edges_degree_bound(self):
        edges, _ = surface_edges(SURFACE17_ROWS)
        g = nx.Graph(edges)
        assert max(dict(g.degree).values()) <= 4


class TestHeavyHex:
    def test_degree_bounded_by_three(self):
        # The defining property of the heavy-hex lattice: every qubit —
        # row qubit or bridge — has at most three couplings.
        edges, _ = heavy_hex_edges(7, 14)
        g = nx.Graph(edges)
        assert max(dict(g.degree).values()) <= 3

    def test_connected(self):
        edges, positions = heavy_hex_edges(7, 14)
        g = nx.Graph(edges)
        g.add_nodes_from(positions)
        assert nx.is_connected(g)

    def test_qubit_count(self):
        # 7 rows of 14 row qubits plus the staggered bridges: even-row
        # gaps anchor at column 0 (4 bridges per gap for row_len=14),
        # odd-row gaps at column 2 (3 bridges).
        _, positions = heavy_hex_edges(7, 14)
        assert len(positions) == 7 * 14 + 4 + 3 + 4 + 3 + 4 + 3

    def test_bridges_join_adjacent_rows(self):
        edges, _ = heavy_hex_edges(3, 6)
        g = nx.Graph(edges)
        bridges = [q for q in g if q >= 3 * 6]
        for b in bridges:
            neighbours = sorted(g[b])
            assert len(neighbours) == 2
            # Both endpoints are row qubits in the same column, one row
            # apart (rows are numbered row-major, row_len apart).
            assert neighbours[1] - neighbours[0] == 6

    def test_device_factory(self):
        device = get_device("heavy_hex", rows=7, row_len=14)
        assert device.num_qubits == 119
        assert device.name == "heavyhex119"
        assert device.symmetric
