"""End-to-end fault injection through the compile service.

The acceptance scenario of the resilience layer: seeded fault plans
(crash / hang / raise / corrupt) cross the process boundary into pool
workers, every job still ends in exactly one terminal status, poisoned
jobs never starve or corrupt their batch-mates, and nothing degraded or
corrupt ever reaches the cache.
"""

import pytest

from repro.core.pipeline import PassConfig
from repro.devices import get_device
from repro.qasm import to_openqasm
from repro.resilience import FaultPlan, FaultSpec
from repro.service import CompileCache, CompileJob, CompileService
from repro.service.jobs import JOB_STATUSES
from repro.workloads import random_circuit


def _job(seed=1, router="sabre", **kwargs):
    qasm = to_openqasm(
        random_circuit(5, 12, seed=seed, two_qubit_fraction=0.6)
    )
    return CompileJob.create(
        qasm, get_device("ibm_qx4"), PassConfig(router=router), **kwargs
    )


class TestLethalPlansNeedPool:
    def test_submit_rejects_crash_plan(self):
        plan = FaultPlan(specs=(FaultSpec(stage="worker", action="crash"),))
        service = CompileService(CompileCache(), fault_plan=plan)
        with pytest.raises(ValueError, match="submit_batch"):
            service.submit(_job())

    def test_submit_rejects_hang_plan(self):
        plan = FaultPlan(specs=(FaultSpec(stage="worker", action="hang"),))
        service = CompileService(CompileCache(), fault_plan=plan)
        with pytest.raises(ValueError, match="submit_batch"):
            service.submit(_job())

    def test_submit_allows_raise_plan(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", router="sabre"),
        ))
        service = CompileService(CompileCache(), fault_plan=plan)
        res = service.submit(_job())
        assert res.status == "degraded"


class TestDegradedResults:
    def test_routing_fault_degrades_in_process(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", router="sabre"),
        ))
        service = CompileService(CompileCache(), fault_plan=plan)
        res = service.submit(_job(job_id="deg"))
        assert res.status == "degraded"
        assert res.completed and not res.ok
        info = res.artifact["resilience"]
        assert info["degraded"] is True
        assert info["fallback_path"] == ["sabre", "naive"]

    def test_degraded_artifact_never_cached(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise", router="sabre"),
        ))
        cache = CompileCache()
        service = CompileService(cache, fault_plan=plan)
        job = _job(job_id="deg")
        res = service.submit(job)
        assert res.status == "degraded"
        artifact, tier = cache.lookup(job.key())
        assert artifact is None and tier is None
        assert service.stats()["service"]["degraded"] == 1
        # A later clean submit compiles fresh and caches normally.
        clean = CompileService(cache)
        res2 = clean.submit(_job(job_id="clean"))
        assert res2.ok and res2.cache_hit is None
        assert "resilience" not in res2.artifact
        assert cache.lookup(job.key())[0] is not None

    def test_job_id_scoped_fault_spares_batch_mates(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="raise",
                      router="sabre", job_id="victim"),
        ))
        service = CompileService(CompileCache())
        jobs = [
            _job(seed=1, job_id="victim"),
            _job(seed=2, job_id="ok1"),
            _job(seed=3, job_id="ok2"),
        ]
        results = service.submit_batch(jobs, fault_plan=plan)
        by_id = {r.job_id: r for r in results}
        assert by_id["victim"].status == "degraded"
        assert by_id["ok1"].ok and by_id["ok2"].ok
        assert "resilience" not in by_id["ok1"].artifact


class TestCorruptArtifacts:
    def _plan(self, job_id=None):
        return FaultPlan(specs=(
            FaultSpec(stage="artifact", action="corrupt", job_id=job_id),
        ))

    def test_in_process_corruption_detected(self):
        cache = CompileCache()
        service = CompileService(cache, fault_plan=self._plan())
        job = _job(job_id="bad")
        res = service.submit(job)
        assert res.status == "crashed"
        assert "corrupt artifact" in res.error
        assert res.artifact is None
        assert cache.lookup(job.key())[0] is None
        assert service.stats()["service"]["corrupt_artifacts"] == 1

    def test_pool_corruption_retried_then_terminal(self):
        # The corrupt fault fires on every attempt (fresh per-job
        # injector), so retries are exhausted and the job ends crashed;
        # clean batch-mates are untouched.
        cache = CompileCache()
        service = CompileService(cache, max_workers=2, retries=1)
        jobs = [_job(seed=1, job_id="bad"), _job(seed=2, job_id="good")]
        results = service.submit_batch(
            jobs, fault_plan=self._plan(job_id="bad")
        )
        by_id = {r.job_id: r for r in results}
        assert by_id["bad"].status == "crashed"
        assert "corrupt artifact" in by_id["bad"].error
        assert by_id["good"].ok
        assert cache.lookup(jobs[0].key())[0] is None
        assert cache.lookup(jobs[1].key())[0] is not None
        assert service.stats()["service"]["corrupt_artifacts"] >= 2


class TestCrashAndHang:
    def test_crash_fault_kills_worker_and_walks_fallback(self):
        # The crash fires only for the sabre attempt, so the fallback
        # retry (naive) survives and the job degrades instead of dying.
        plan = FaultPlan(specs=(
            FaultSpec(stage="routing", action="crash",
                      router="sabre", times=None),
        ))
        service = CompileService(CompileCache(), max_workers=2, retries=2)
        res = service.submit_batch(
            [_job(job_id="crashy")], fault_plan=plan
        )[0]
        assert res.status == "degraded"
        info = res.artifact["resilience"]
        assert info["requested_router"] == "sabre"
        assert info["router_used"] == "naive"
        assert res.attempts >= 2
        assert service.stats()["service"]["fallback_retries"] >= 1

    def test_hang_fault_times_out(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="worker", action="hang",
                      delay=10.0, times=None),
        ))
        service = CompileService(CompileCache(), max_workers=2)
        res = service.submit_batch(
            [_job(job_id="stuck")], timeout=0.5, fault_plan=plan
        )[0]
        assert res.status == "timeout"
        assert "compute budget" in res.error

    def test_batch_timeout_bounds_hung_batch(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="worker", action="hang",
                      delay=10.0, job_id="stuck", times=None),
        ))
        service = CompileService(CompileCache(), max_workers=2)
        results = service.submit_batch(
            [_job(seed=1, job_id="stuck"), _job(seed=2, job_id="fine")],
            batch_timeout=2.5, fault_plan=plan,
        )
        by_id = {r.job_id: r for r in results}
        assert by_id["stuck"].status == "timeout"
        assert "batch deadline" in by_id["stuck"].error
        assert by_id["fine"].ok

    def test_twenty_jobs_one_crash_one_hang_all_terminal(self):
        # The headline acceptance scenario: a 20-job batch with one
        # deterministic crasher and one hanger returns 20 terminal
        # statuses in input order — the pool never deadlocks and no job
        # is lost or reported twice.
        plan = FaultPlan(specs=(
            FaultSpec(stage="worker", action="crash",
                      job_id="j3", times=None),
            FaultSpec(stage="worker", action="hang",
                      job_id="j7", delay=20.0, times=None),
        ))
        service = CompileService(CompileCache(), max_workers=4, retries=2)
        jobs = [_job(seed=s, job_id=f"j{s}") for s in range(20)]
        results = service.submit_batch(jobs, timeout=2.0, fault_plan=plan)

        assert [r.job_id for r in results] == [f"j{s}" for s in range(20)]
        assert all(r.status in JOB_STATUSES for r in results)
        by_id = {r.job_id: r for r in results}
        assert by_id["j3"].status == "crashed"
        assert by_id["j7"].status == "timeout"
        healthy = [r for r in results if r.job_id not in ("j3", "j7")]
        assert all(r.ok for r in healthy), [
            (r.job_id, r.status, r.error) for r in healthy
        ]

    def test_clean_payloads_not_augmented(self):
        # Byte-stability: without a plan, deadline, or override the
        # worker payload is exactly the job's own — resilience must be
        # invisible when unused.
        service = CompileService(CompileCache())
        job = _job(seed=4)
        augmented = service._augment(
            job.payload(), deadline=None, batch_deadline=None, plan=None,
        )
        assert augmented == job.payload()
        res = service.submit(_job(seed=4))
        assert "resilience" not in res.artifact
