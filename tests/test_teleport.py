"""Tests for teleportation-based routing (paper footnote 4)."""

import numpy as np
import pytest

from repro.core import Circuit
from repro.core.gates import Gate
from repro.devices import grid_device, linear_device
from repro.mapping.placement import Placement
from repro.mapping.routing import route, route_naive, route_teleport
from repro.mapping.scheduler import asap_schedule
from repro.sim import StateVector, simulate
from repro.verify import (
    data_qubit_fidelity,
    equivalent_mapped_with_feedforward,
)


def _far_pair_on_line(length):
    device = linear_device(length)
    circuit = Circuit(2).h(0).cnot(0, 1)
    placement = Placement.from_partial({0: 0, 1: length - 1}, 2, length)
    return device, circuit, placement


class TestConditionalGates:
    def test_condition_skips_when_unsatisfied(self):
        sv = StateVector(2)
        sv.apply(Gate("measure", (0,)))  # outcome 0
        sv.apply(Gate("x", (1,), condition=(0, 1)))
        assert np.allclose(sv.state, [1, 0, 0, 0])

    def test_condition_fires_when_satisfied(self):
        sv = StateVector(2)
        sv.apply(Gate("x", (0,)))
        sv.apply(Gate("measure", (0,)))
        sv.apply(Gate("x", (1,), condition=(0, 1)))
        assert np.allclose(np.abs(sv.state), [0, 0, 0, 1])

    def test_condition_on_unmeasured_bit_raises(self):
        sv = StateVector(1)
        with pytest.raises(RuntimeError):
            sv.apply(Gate("x", (0,), condition=(0, 1)))

    def test_condition_validation(self):
        with pytest.raises(ValueError):
            Gate("x", (0,), condition=(0, 2))
        with pytest.raises(ValueError):
            Gate("measure", (0,), condition=(0, 1))

    def test_conditioned_gate_not_invertible(self):
        with pytest.raises(ValueError):
            Gate("x", (0,), condition=(1, 1)).inverse()

    def test_unitary_builder_rejects_conditions(self):
        from repro.sim import circuit_unitary

        circuit = Circuit(2, [Gate("x", (0,), condition=(1, 0))])
        with pytest.raises(ValueError):
            circuit_unitary(circuit)

    def test_dag_orders_condition_after_measure(self):
        from repro.core import DependencyGraph

        circuit = Circuit(2)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        dag = DependencyGraph(circuit)
        assert dag.predecessors(1) == [0]

    def test_remap_carries_condition(self):
        gate = Gate("x", (1,), condition=(0, 1))
        remapped = gate.remap({0: 5, 1: 3})
        assert remapped.qubits == (3,)
        assert remapped.condition == (5, 1)


class TestTeleportProtocol:
    def test_teleports_far_pair(self):
        device, circuit, placement = _far_pair_on_line(6)
        result = route_teleport(circuit, device, placement)
        assert result.metadata["teleports"] == 1
        assert equivalent_mapped_with_feedforward(
            circuit, result.circuit, result.initial, result.final
        )

    def test_contains_measurements_and_conditions(self):
        device, circuit, placement = _far_pair_on_line(6)
        result = route_teleport(circuit, device, placement)
        assert result.circuit.count("measure") == 2
        assert sum(1 for g in result.circuit if g.condition) == 2

    def test_short_distance_falls_back_to_swaps(self):
        device = linear_device(3)
        circuit = Circuit(3).cnot(0, 2)
        result = route_teleport(circuit, device)
        assert result.metadata["teleports"] == 0
        assert result.metadata["swaps"] == 1

    def test_no_free_qubits_falls_back(self):
        device = linear_device(5)
        circuit = Circuit(5).cnot(0, 4)  # all sites occupied
        result = route_teleport(circuit, device)
        assert result.metadata["teleports"] == 0
        assert result.metadata["swaps"] > 0

    def test_final_placement_tracks_move(self):
        device, circuit, placement = _far_pair_on_line(6)
        result = route_teleport(circuit, device, placement)
        moved = [result.final.phys(q) for q in range(2)]
        assert device.connected(*moved)

    def test_multiple_teleports_recycle_ancillas(self):
        device = linear_device(7)
        circuit = Circuit(2).cnot(0, 1).h(0).cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: 6}, 2, 7)
        result = route_teleport(circuit, device, placement)
        assert result.metadata["teleports"] >= 1
        assert equivalent_mapped_with_feedforward(
            circuit, result.circuit, result.initial, result.final
        )

    def test_on_grid_with_free_corridor(self):
        device = grid_device(3, 4)
        circuit = Circuit(2).h(0).cnot(0, 1).t(1)
        placement = Placement.from_partial({0: 0, 1: 11}, 2, 12)
        result = route_teleport(circuit, device, placement)
        assert result.metadata["teleports"] == 1
        assert equivalent_mapped_with_feedforward(
            circuit, result.circuit, result.initial, result.final
        )

    def test_registered_in_dispatcher(self):
        device, circuit, placement = _far_pair_on_line(5)
        result = route(circuit, device, "teleport", placement)
        assert result.router == "teleport"


class TestRelaxedTimeConstraints:
    def test_epr_distribution_overlaps_with_computation(self):
        """The paper's point: distribution swaps touch only free qubits,
        so ASAP scheduling overlaps them with the data qubits' earlier
        gates — teleport latency beats swap-chain latency when the data
        qubit is busy beforehand."""
        length = 8
        device = linear_device(length)
        circuit = Circuit(2)
        for _ in range(12):  # busy prologue on both program qubits
            circuit.t(0).t(1)
        circuit.cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: length - 1}, 2, length)

        swap_latency = asap_schedule(
            route_naive(circuit, device, placement).circuit, device
        ).latency
        teleport_result = route_teleport(circuit, device, placement)
        teleport_latency = asap_schedule(teleport_result.circuit, device).latency
        assert teleport_latency < swap_latency


class TestDecompositionWithConditions:
    def test_condition_propagates_through_rules(self):
        from repro.decompose import decompose_circuit
        from repro.devices import surface17

        circuit = Circuit(2)
        circuit.measure(0)
        circuit.append(Gate("z", (1,), condition=(0, 1)))
        lowered = decompose_circuit(circuit, surface17())
        conditioned = [g for g in lowered if g.is_unitary]
        assert conditioned  # z expands to x, y on the surface basis
        assert all(g.condition == (0, 1) for g in conditioned)

    def test_native_conditioned_gate_untouched(self, qx4):
        from repro.decompose import decompose_circuit

        circuit = Circuit(2)
        circuit.measure(0)
        circuit.append(Gate("rx", (1,), (0.5,), condition=(0, 1)))
        lowered = decompose_circuit(circuit, qx4)
        assert lowered.gates[1].condition == (0, 1)

    def test_teleported_circuit_fully_lowers(self):
        from repro.decompose import decompose_circuit

        device = linear_device(6)
        circuit = Circuit(2).h(0).cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: 5}, 2, 6)
        result = route_teleport(circuit, device, placement)
        native = decompose_circuit(result.circuit, device)
        assert device.conforms(native)
        assert equivalent_mapped_with_feedforward(
            circuit, native, result.initial, result.final
        )


class TestDataQubitFidelity:
    def test_perfect_match(self):
        state = simulate(Circuit(2).h(0))
        expected = simulate(Circuit(1).h(0))
        assert data_qubit_fidelity(state, [0], expected) == pytest.approx(1.0)

    def test_mismatch_detected(self):
        state = simulate(Circuit(2).x(0))
        expected = simulate(Circuit(1))  # |0>
        assert data_qubit_fidelity(state, [0], expected) == pytest.approx(0.0)

    def test_entangled_data_register(self):
        state = simulate(Circuit(3).h(1).cnot(1, 2))
        expected = simulate(Circuit(2).h(0).cnot(0, 1))
        assert data_qubit_fidelity(state, [1, 2], expected) == pytest.approx(1.0)

    def test_checker_rejects_wrong_mapping(self):
        device, circuit, placement = _far_pair_on_line(6)
        result = route_teleport(circuit, device, placement)
        broken = result.circuit.copy()
        broken.x(result.final.phys(0))
        assert not equivalent_mapped_with_feedforward(
            circuit, broken, result.initial, result.final
        )
