"""Unit tests for repro.core.dag (Section VI-B dependency graph)."""

from repro.core import Circuit, DependencyGraph


class TestDependencies:
    def test_chain_on_one_qubit(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        dag = DependencyGraph(circuit)
        assert dag.predecessors(1) == [0]
        assert dag.predecessors(2) == [1]
        assert dag.successors(0) == [1]

    def test_independent_gates_have_no_edges(self):
        circuit = Circuit(2).h(0).h(1)
        dag = DependencyGraph(circuit)
        assert dag.predecessors(1) == []

    def test_two_qubit_gate_joins_lines(self):
        circuit = Circuit(2).h(0).h(1).cnot(0, 1)
        dag = DependencyGraph(circuit)
        assert dag.predecessors(2) == [0, 1]

    def test_only_direct_dependencies_stored(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        dag = DependencyGraph(circuit)
        # h(0) #2 depends directly on t, not on the first h.
        assert dag.predecessors(2) == [1]

    def test_barrier_orders_everything_it_spans(self):
        circuit = Circuit(2).h(0).barrier(0, 1).h(1)
        dag = DependencyGraph(circuit)
        assert dag.predecessors(1) == [0]
        assert dag.predecessors(2) == [1]

    def test_empty_barrier_spans_all_qubits(self):
        circuit = Circuit(2).h(0).barrier().h(1)
        dag = DependencyGraph(circuit)
        assert dag.predecessors(2) == [1]


class TestTraversals:
    def test_front_layer_initial(self):
        circuit = Circuit(3).h(0).cnot(0, 1).h(2)
        dag = DependencyGraph(circuit)
        assert dag.front_layer() == [0, 2]

    def test_front_layer_with_done(self):
        circuit = Circuit(3).h(0).cnot(0, 1).h(2)
        dag = DependencyGraph(circuit)
        assert dag.front_layer(done={0, 2}) == [1]

    def test_topological_respects_gate_order(self):
        circuit = Circuit(2).h(0).h(1).cnot(0, 1)
        dag = DependencyGraph(circuit)
        order = list(dag.topological())
        assert order.index(0) < order.index(2)
        assert order.index(1) < order.index(2)

    def test_asap_levels(self):
        circuit = Circuit(3).h(0).h(1).cnot(0, 1).cnot(1, 2)
        dag = DependencyGraph(circuit)
        assert dag.asap_levels() == [0, 0, 1, 2]

    def test_layers_group_by_level(self):
        circuit = Circuit(3).h(0).h(1).cnot(0, 1).cnot(1, 2)
        dag = DependencyGraph(circuit)
        assert dag.layers() == [[0, 1], [2], [3]]

    def test_two_qubit_layers_skip_single_qubit_gates(self):
        circuit = Circuit(4).h(0).cnot(0, 1).h(1).cnot(2, 3).cnot(1, 2)
        dag = DependencyGraph(circuit)
        layers = dag.two_qubit_layers()
        # cnot(0,1) and cnot(2,3) are independent -> same layer; the h(1)
        # between them is transparent for two-qubit layering.
        assert layers == [[1, 3], [4]]

    def test_critical_path(self):
        circuit = Circuit(2).h(0).cnot(0, 1).h(1)
        dag = DependencyGraph(circuit)
        assert dag.critical_path_length() == 3

    def test_empty_circuit(self):
        dag = DependencyGraph(Circuit(2))
        assert len(dag) == 0
        assert dag.layers() == []
        assert dag.critical_path_length() == 0

    def test_gate_accessor(self, ghz3):
        dag = DependencyGraph(ghz3)
        assert dag.gate(0).name == "h"
