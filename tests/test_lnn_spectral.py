"""Tests for the LNN parallel-SWAP router and spectral placement."""

import pytest

from repro.core import Circuit
from repro.devices import get_device, grid_device, linear_device, surface17
from repro.mapping.placement import spectral_placement, trivial_placement, Placement
from repro.mapping.routing import RoutingError, route, route_lnn, route_sabre
from repro.mapping.routing.lnn import line_order
from repro.verify import equivalent_mapped
from repro.workloads import ghz, qft, random_circuit


class TestLineOrder:
    def test_simple_chain(self):
        order = line_order(linear_device(5))
        assert order in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])

    def test_single_qubit(self):
        assert line_order(linear_device(1)) == [0]

    def test_rejects_grid(self):
        with pytest.raises(RoutingError):
            line_order(grid_device(2, 3))

    def test_rejects_ring(self):
        with pytest.raises(RoutingError):
            line_order(get_device("ring", num_qubits=5))


class TestLnnRouter:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence_on_random_circuits(self, seed):
        device = linear_device(7)
        circuit = random_circuit(7, 24, seed=seed, two_qubit_fraction=0.6)
        result = route_lnn(circuit, device)
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )

    def test_adjacent_gates_need_nothing(self):
        device = linear_device(5)
        result = route_lnn(ghz(5), device)
        assert result.added_swaps == 0
        assert result.metadata["phases"] == 0

    def test_parallel_phases_bound_depth(self):
        """Swap layers are disjoint, so routed depth stays close to the
        phase count rather than the swap count."""
        device = linear_device(8)
        circuit = qft(8)
        result = route_lnn(circuit, device)
        sabre = route_sabre(circuit, device)
        # More swaps than sabre is fine; depth must not be worse.
        assert result.circuit.depth() <= sabre.circuit.depth() + 2

    def test_respects_initial_placement(self):
        device = linear_device(4)
        circuit = Circuit(2).cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: 3}, 2, 4)
        result = route_lnn(circuit, device, placement)
        assert result.added_swaps > 0
        assert equivalent_mapped(
            circuit, result.circuit, result.initial, result.final
        )

    def test_registered(self):
        device = linear_device(5)
        result = route(qft(4), device, "lnn")
        assert result.router == "lnn"

    def test_multi_qubit_rejected(self):
        with pytest.raises(RoutingError):
            route_lnn(Circuit(3).toffoli(0, 1, 2), linear_device(3))


class TestSpectralPlacement:
    def test_beats_trivial_in_aggregate(self):
        device = surface17()
        total_spectral = total_trivial = 0
        for seed in range(4):
            circuit = random_circuit(7, 25, seed=seed, two_qubit_fraction=0.6)
            total_spectral += route(
                circuit, device, "sabre", spectral_placement(circuit, device)
            ).added_swaps
            total_trivial += route(
                circuit, device, "sabre", trivial_placement(circuit, device)
            ).added_swaps
        assert total_spectral < total_trivial

    def test_chain_embeds_into_line_exactly(self):
        device = linear_device(6)
        circuit = ghz(6)
        placement = spectral_placement(circuit, device)
        assert route(circuit, device, "sabre", placement).added_swaps == 0

    def test_is_a_valid_bijection(self):
        device = grid_device(3, 3)
        circuit = qft(5)
        placement = spectral_placement(circuit, device)
        assert sorted(placement.prog_to_phys()) == list(range(9))
        assert placement.num_program == 5

    def test_isolated_qubits_handled(self):
        device = linear_device(4)
        circuit = Circuit(3).h(0).h(1).h(2)  # no interactions at all
        placement = spectral_placement(circuit, device)
        assert placement.num_program == 3

    def test_registered_in_placers(self):
        from repro.mapping.placement import PLACERS

        assert "spectral" in PLACERS
