"""Unit tests for repro.sim.statevector."""

import math

import numpy as np
import pytest

from repro.core import Circuit
from repro.core import gates as G
from repro.sim import StateVector, apply_gate, basis_state, simulate, zero_state

_INV2 = 1 / math.sqrt(2)


class TestStates:
    def test_zero_state(self):
        state = zero_state(3)
        assert state[0] == 1 and np.count_nonzero(state) == 1

    def test_basis_state_from_int(self):
        state = basis_state(2, 3)
        assert state[3] == 1

    def test_basis_state_from_string_msb_first(self):
        # "10" means qubit0 = 1, qubit1 = 0 -> index 2.
        state = basis_state(2, "10")
        assert state[2] == 1

    def test_basis_state_out_of_range(self):
        with pytest.raises(ValueError):
            basis_state(2, 4)


class TestGateApplication:
    def test_h_creates_superposition(self):
        state = apply_gate(zero_state(1), G.h(0), 1)
        assert np.allclose(state, [_INV2, _INV2])

    def test_x_flips(self):
        state = apply_gate(zero_state(2), G.x(1), 2)
        assert state[1] == 1  # qubit1 is the LSB

    def test_x_on_msb(self):
        state = apply_gate(zero_state(2), G.x(0), 2)
        assert state[2] == 1

    def test_cnot_entangles_bell(self):
        circuit = Circuit(2).h(0).cnot(0, 1)
        state = simulate(circuit)
        assert np.allclose(state, [_INV2, 0, 0, _INV2])

    def test_cnot_control_target_order(self):
        # X on qubit1 then CNOT(1, 0): control=1 is set -> flips qubit0.
        circuit = Circuit(2).x(1).cnot(1, 0)
        state = simulate(circuit)
        assert state[3] == 1

    def test_swap_moves_amplitude(self):
        circuit = Circuit(2).x(0).swap(0, 1)
        state = simulate(circuit)
        assert state[1] == 1

    def test_toffoli_flips_only_when_both_controls_set(self):
        fires = simulate(Circuit(3).x(0).x(1).toffoli(0, 1, 2))
        assert fires[0b111] == 1
        holds = simulate(Circuit(3).x(0).toffoli(0, 1, 2))
        assert holds[0b100] == 1

    def test_gate_application_matches_matrix_on_nonadjacent_qubits(self):
        rng = np.random.default_rng(3)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        from repro.sim.unitary import gate_unitary

        gate = G.cnot(2, 0)
        direct = apply_gate(psi, gate, 3)
        via_matrix = gate_unitary(gate, 3) @ psi
        assert np.allclose(direct, via_matrix)

    def test_norm_preserved(self):
        circuit = Circuit(3).h(0).cnot(0, 1).t(2).cz(1, 2)
        state = simulate(circuit)
        assert math.isclose(np.linalg.norm(state), 1.0, abs_tol=1e-12)

    def test_apply_gate_rejects_nonunitary(self):
        with pytest.raises(ValueError):
            apply_gate(zero_state(1), G.measure(0), 1)


class TestMeasurement:
    def test_deterministic_outcome(self):
        sv = StateVector(1)
        sv.apply(G.x(0))
        assert sv.measure(0) == 1
        assert sv.results[0] == 1

    def test_collapse(self):
        sv = StateVector(2, rng=np.random.default_rng(0))
        sv.run(Circuit(2).h(0).cnot(0, 1))
        first = sv.measure(0)
        second = sv.measure(1)
        assert first == second  # Bell correlations

    def test_measure_gate_via_run(self):
        sv = StateVector(1)
        sv.run(Circuit(1).x(0).measure(0))
        assert sv.results[0] == 1

    def test_probability_of(self):
        sv = StateVector(2)
        sv.apply(G.h(0))
        assert math.isclose(sv.probability_of(0, 1), 0.5, abs_tol=1e-12)
        assert math.isclose(sv.probability_of(1, 1), 0.0, abs_tol=1e-12)

    def test_sample_counts_distribution(self):
        sv = StateVector(1, rng=np.random.default_rng(42))
        sv.apply(G.h(0))
        counts = sv.sample_counts(2000)
        assert set(counts) == {"0", "1"}
        assert abs(counts["0"] - 1000) < 150

    def test_sample_counts_selected_qubits(self):
        sv = StateVector(2)
        sv.apply(G.x(1))
        counts = sv.sample_counts(10, qubits=[1])
        assert counts == {"1": 10}

    def test_prep_z_resets(self):
        sv = StateVector(1)
        sv.apply(G.x(0))
        sv.apply(G.prep_z(0))
        assert np.allclose(sv.state, [1, 0])

    def test_measurement_outcomes_are_seeded(self):
        def outcome(seed):
            sv = StateVector(1, rng=np.random.default_rng(seed))
            sv.apply(G.h(0))
            return sv.measure(0)

        assert outcome(7) == outcome(7)

    def test_fidelity(self):
        a = StateVector(1)
        b = StateVector(1)
        assert math.isclose(a.fidelity(b), 1.0)
        b.apply(G.x(0))
        assert math.isclose(a.fidelity(b), 0.0, abs_tol=1e-12)


class TestRunValidation:
    def test_mismatched_widths_raise(self):
        with pytest.raises(ValueError):
            StateVector(2).run(Circuit(3))

    def test_bad_initial_state_shape(self):
        with pytest.raises(ValueError):
            StateVector(2, state=np.ones(3))

    def test_barrier_is_noop(self):
        sv = StateVector(2)
        sv.run(Circuit(2).barrier())
        assert np.allclose(sv.state, zero_state(2))
