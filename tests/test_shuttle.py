"""Tests for quantum-dot devices and shuttle-based routing (Sec. VI-C)."""

import pytest

from repro.core import Circuit
from repro.core.gates import Gate, gate_matrix
from repro.decompose import decompose_circuit
from repro.devices import get_device, quantum_dot_device
from repro.mapping.placement import FREE, Placement
from repro.mapping.routing import route, route_sabre, route_shuttle
from repro.verify import equivalent_mapped
from repro.workloads import qft, random_circuit

import numpy as np


class TestShuttleGate:
    def test_unitary_equals_swap(self):
        assert np.allclose(gate_matrix("shuttle"), gate_matrix("swap"))

    def test_symmetric_and_self_inverse(self):
        gate = Gate("shuttle", (0, 1))
        assert gate.is_symmetric
        assert gate.inverse() == gate


class TestDotDevice:
    def test_has_shuttling_feature(self):
        device = quantum_dot_device(3, 3)
        assert "shuttling" in device.features
        assert "shuttle" in device.native_gates

    def test_registry(self):
        device = get_device("dots", rows=2, cols=3)
        assert device.num_qubits == 6
        assert "shuttling" in device.features

    def test_serialisation_keeps_feature(self):
        from repro.devices import Device

        device = quantum_dot_device(2, 3)
        restored = Device.from_json(device.to_json())
        assert "shuttling" in restored.features
        assert "shuttle" in restored.native_gates

    def test_shuttle_cheaper_than_swap(self):
        device = quantum_dot_device(2, 3)
        assert device.duration("shuttle") < device.duration("swap")

    def test_grid_device_has_no_shuttling(self):
        assert "shuttling" not in get_device("grid", rows=2, cols=2).features


class TestShuttleRouter:
    def test_prefers_shuttle_into_empty_site(self):
        # Line of 3 sites, 2 program qubits at the ends; the middle is
        # empty, so one shuttle (not swaps) brings them together.
        device = quantum_dot_device(1, 3)
        circuit = Circuit(2).cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: 2}, 2, 3)
        result = route_shuttle(circuit, device, placement)
        assert result.metadata["shuttles"] == 1
        assert result.metadata["swaps"] == 0
        assert equivalent_mapped(circuit, result.circuit, result.initial, result.final)

    def test_falls_back_to_swaps_when_full(self):
        device = quantum_dot_device(1, 3)
        circuit = Circuit(3).cnot(0, 2)  # every site occupied
        result = route_shuttle(circuit, device)
        assert result.metadata["shuttles"] == 0
        assert result.metadata["swaps"] >= 1

    def test_move_cost_beats_pure_swap_on_sparse_array(self):
        device = quantum_dot_device(3, 4)
        wins = 0
        for seed in range(4):
            circuit = random_circuit(6, 25, seed=seed, two_qubit_fraction=0.6)
            swap_cost = 3 * route_sabre(circuit, device).added_swaps
            shuttle_cost = route_shuttle(circuit, device).metadata["move_cost"]
            if shuttle_cost <= swap_cost:
                wins += 1
        assert wins >= 3

    @pytest.mark.parametrize("seed", range(3))
    def test_equivalence_on_random_circuits(self, seed):
        device = quantum_dot_device(3, 3)
        circuit = random_circuit(5, 20, seed=seed)
        result = route(circuit, device, "shuttle")
        assert equivalent_mapped(circuit, result.circuit, result.initial, result.final)

    def test_tracks_placement_through_shuttles(self):
        device = quantum_dot_device(1, 3)
        circuit = Circuit(2).cnot(0, 1)
        placement = Placement.from_partial({0: 0, 1: 2}, 2, 3)
        result = route_shuttle(circuit, device, placement)
        assert result.initial != result.final
        moved = [result.final.phys(q) for q in range(2)]
        assert device.connected(*moved)

    def test_on_non_shuttling_device_uses_swaps_only(self):
        device = get_device("grid", rows=2, cols=3)
        circuit = random_circuit(5, 15, seed=1, two_qubit_fraction=0.7)
        result = route_shuttle(circuit, device)
        assert result.metadata["shuttles"] == 0
        assert equivalent_mapped(circuit, result.circuit, result.initial, result.final)

    def test_shuttle_decomposes_to_swap_elsewhere(self):
        device = get_device("grid", rows=1, cols=2)
        circuit = Circuit(2, [Gate("shuttle", (0, 1))])
        lowered = decompose_circuit(circuit, device)
        assert "shuttle" not in {g.name for g in lowered}
        assert device.conforms(lowered)


class TestFullPipelineOnDots:
    def test_compile_circuit_with_shuttle_router(self):
        from repro.core.pipeline import compile_circuit

        device = quantum_dot_device(3, 4)
        circuit = qft(5)
        result = compile_circuit(circuit, device, placer="greedy", router="shuttle")
        assert device.conforms(result.native)
        assert equivalent_mapped(
            circuit, result.native, result.routed.initial, result.routed.final
        )
        # Shuttles survive lowering (they are native on dots).
        assert result.routed.circuit.count("shuttle") == result.native.count("shuttle")
