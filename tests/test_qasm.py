"""Tests for the OpenQASM parser and the OpenQASM/cQASM writers."""

import math

import pytest

from repro.core import Circuit
from repro.qasm import QasmError, parse_qasm, schedule_to_cqasm, to_cqasm, to_openqasm
from repro.verify import equivalent_circuits


class TestParserBasics:
    def test_minimal_program(self):
        circuit = parse_qasm(
            """
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            h q[0];
            cx q[0],q[1];
            """
        )
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit] == ["h", "cnot"]

    def test_all_simple_gates(self):
        source = "qreg q[3];\n" + "\n".join(
            f"{name} q[0];" for name in
            ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "id")
        )
        circuit = parse_qasm(source)
        assert circuit.size() == 9
        assert circuit.gates[-1].name == "i"

    def test_parameterised_gates(self):
        circuit = parse_qasm("qreg q[1]; rx(pi/2) q[0]; u3(pi,0,pi) q[0];")
        assert circuit.gates[0].params == (math.pi / 2,)
        assert circuit.gates[1].name == "u"

    def test_expression_arithmetic(self):
        circuit = parse_qasm("qreg q[1]; rz(2*pi/4 - -0.5) q[0];")
        assert circuit.gates[0].params[0] == pytest.approx(math.pi / 2 + 0.5)

    def test_scientific_notation(self):
        circuit = parse_qasm("qreg q[1]; rz(1e-3) q[0];")
        assert circuit.gates[0].params[0] == pytest.approx(1e-3)

    def test_three_qubit_gates(self):
        circuit = parse_qasm("qreg q[3]; ccx q[0],q[1],q[2]; cswap q[2],q[0],q[1];")
        assert [g.name for g in circuit] == ["toffoli", "fredkin"]

    def test_measure_with_arrow(self):
        circuit = parse_qasm("qreg q[2]; creg c[2]; measure q[1] -> c[1];")
        assert circuit.gates[0].name == "measure"
        assert circuit.gates[0].qubits == (1,)

    def test_measure_register_broadcast(self):
        circuit = parse_qasm("qreg q[3]; creg c[3]; measure q -> c;")
        assert circuit.count("measure") == 3

    def test_reset(self):
        circuit = parse_qasm("qreg q[1]; reset q[0];")
        assert circuit.gates[0].name == "prep_z"

    def test_barrier(self):
        circuit = parse_qasm("qreg q[3]; barrier q[0],q[2];")
        assert circuit.gates[0].qubits == (0, 2)

    def test_barrier_whole_register(self):
        circuit = parse_qasm("qreg q[2]; barrier q;")
        assert circuit.gates[0].qubits == (0, 1)

    def test_gate_broadcast(self):
        circuit = parse_qasm("qreg q[3]; h q;")
        assert circuit.count("h") == 3

    def test_broadcast_with_fixed_operand(self):
        circuit = parse_qasm("qreg a[1]; qreg b[2]; cx a[0],b;")
        assert [g.qubits for g in circuit] == [(0, 1), (0, 2)]

    def test_multiple_registers_flattened(self):
        circuit = parse_qasm("qreg a[2]; qreg b[2]; cx a[1],b[0];")
        assert circuit.num_qubits == 4
        assert circuit.gates[0].qubits == (1, 2)

    def test_comments_stripped(self):
        circuit = parse_qasm("qreg q[1]; // comment\nh q[0]; // trailing\n")
        assert circuit.size() == 1

    def test_statements_across_lines(self):
        circuit = parse_qasm("qreg q[2];\ncx\n q[0],\n q[1];")
        assert circuit.gates[0].name == "cnot"

    def test_line_break_separates_tokens(self):
        # Regression: the statement splitter used to drop line breaks,
        # fusing a gate name ending one line with the operand opening
        # the next ("h\nq[1];" parsed as the unknown gate "hq").
        circuit = parse_qasm("qreg q[2];\nh\nq[1];")
        assert [g.name for g in circuit.gates] == ["h"]
        assert circuit.gates[0].qubits == (1,)


class TestParserErrors:
    def test_unknown_gate(self):
        with pytest.raises(QasmError, match="unsupported gate"):
            parse_qasm("qreg q[1]; warp q[0];")

    def test_unknown_register(self):
        with pytest.raises(QasmError, match="unknown register"):
            parse_qasm("qreg q[1]; h r[0];")

    def test_index_out_of_range(self):
        with pytest.raises(QasmError, match="out of range"):
            parse_qasm("qreg q[1]; h q[1];")

    def test_wrong_param_count(self):
        with pytest.raises(QasmError, match="parameters"):
            parse_qasm("qreg q[1]; rx q[0];")

    def test_duplicate_register(self):
        with pytest.raises(QasmError, match="duplicate"):
            parse_qasm("qreg q[1]; qreg q[2];")

    def test_custom_gate_definitions_rejected(self):
        with pytest.raises(QasmError, match="unsupported construct"):
            parse_qasm("qreg q[1]; gate foo a { h a; }")

    def test_error_carries_line_number(self):
        with pytest.raises(QasmError, match="line 3"):
            parse_qasm("qreg q[1];\nh q[0];\nbad q[0];")

    def test_error_position_on_shared_line(self):
        # Regression: the second statement of a shared line used to
        # report a drifting position; it must point at its own start.
        src = "OPENQASM 2.0;\nqreg q[2];\nh q[0]; zz q[1];"
        with pytest.raises(QasmError) as excinfo:
            parse_qasm(src)
        err = excinfo.value
        assert err.line == 3
        assert err.column == 9
        assert "line 3, col 9" in str(err)
        assert err.message.startswith("unsupported gate")

    def test_error_line_of_multiline_statement(self):
        # A statement spanning lines is reported where it starts.
        with pytest.raises(QasmError) as excinfo:
            parse_qasm("qreg q[1];\nwarp\nq[0];")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 1

    def test_malformed_qreg(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q;")

    def test_broadcast_size_mismatch(self):
        with pytest.raises(QasmError, match="mismatched"):
            parse_qasm("qreg a[2]; qreg b[3]; cx a,b;")


class TestWriters:
    def test_openqasm_roundtrip_preserves_gates(self, ghz3):
        assert parse_qasm(to_openqasm(ghz3)).gates == ghz3.gates

    def test_openqasm_roundtrip_with_params(self):
        circuit = Circuit(2).rx(0.25, 0).u(1.5, -0.5, 0.75, 1).cp(0.3, 0, 1)
        back = parse_qasm(to_openqasm(circuit))
        assert equivalent_circuits(circuit, back)

    def test_openqasm_measure_and_reset(self):
        circuit = Circuit(1).measure(0)
        text = to_openqasm(circuit)
        assert "creg c0[1];" in text
        assert "measure q[0] -> c0[0];" in text
        back = parse_qasm(text)
        assert back.count("measure") == 1

    def test_openqasm_feedforward_roundtrip(self):
        from repro.core.gates import Gate

        circuit = Circuit(2)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        circuit.append(Gate("z", (1,), condition=(0, 0)))
        text = to_openqasm(circuit)
        assert "if(c0==1) x q[1];" in text
        assert "if(c0==0) z q[1];" in text
        back = parse_qasm(text)
        assert back.gates == circuit.gates

    def test_parser_rejects_conditioned_measure(self):
        with pytest.raises(QasmError, match="cannot condition"):
            parse_qasm("qreg q[1]; creg c0[1]; if(c0==1) measure q[0] -> c0[0];")

    def test_parser_rejects_whole_register_condition(self):
        with pytest.raises(QasmError, match="per-qubit"):
            parse_qasm("qreg q[1]; creg flags[2]; if(flags==1) x q[0];")

    def test_parser_rejects_nonbinary_condition(self):
        with pytest.raises(QasmError, match="0 or 1"):
            parse_qasm("qreg q[1]; creg c0[1]; if(c0==2) x q[0];")

    def test_cqasm_header(self, ghz3):
        text = to_cqasm(ghz3)
        assert text.startswith("version 1.0\nqubits 3")
        assert "cnot q[0], q[1]" in text

    def test_cqasm_measure_name(self):
        text = to_cqasm(Circuit(1).measure(0))
        assert "measure_z q[0]" in text

    def test_schedule_bundles(self, s17):
        from repro.mapping.scheduler import asap_schedule

        circuit = Circuit(4).x(0).y(3)
        text = schedule_to_cqasm(asap_schedule(circuit, s17))
        assert "{ x q[0] | y q[3] }" in text

    def test_schedule_wait_between_bundles(self, s17):
        from repro.mapping.scheduler import asap_schedule

        circuit = Circuit(4).cz(0, 3).x(0)
        text = schedule_to_cqasm(asap_schedule(circuit, s17))
        assert "wait" in text
