"""Extra rendering coverage: device families, feedforward, schedules."""

from repro.core import Circuit
from repro.core.gates import Gate
from repro.devices import get_device
from repro.mapping.scheduler import asap_schedule
from repro.viz import draw_circuit, draw_device, draw_schedule


class TestDeviceDrawings:
    def test_iontrap_shows_all_to_all_edges(self):
        device = get_device("iontrap", num_qubits=4)
        text = draw_device(device)
        assert "iontrap4" in text
        assert "0-1" in text and "2-3" in text

    def test_dots_render(self):
        text = draw_device(get_device("dots", rows=2, cols=2))
        assert "dots2x2" in text

    def test_photonic_render(self):
        text = draw_device(get_device("photonic", num_qubits=3))
        assert "photonic3" in text

    def test_rotated_surface_device_render(self):
        from repro.qec import RotatedSurfaceCode

        text = draw_device(RotatedSurfaceCode(3).device())
        assert "frequency f1" in text and "feedline 2" in text


class TestFeedforwardRendering:
    def test_conditioned_gate_label(self):
        circuit = Circuit(2)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        text = draw_circuit(circuit)
        assert "X?c0" in text

    def test_pulse_timeline_marks_feedforward(self):
        from repro.devices import linear_device
        from repro.pulse import lower_to_pulses

        device = linear_device(2)
        circuit = Circuit(2)
        circuit.measure(0)
        circuit.append(Gate("x", (1,), condition=(0, 1)))
        program = lower_to_pulses(asap_schedule(circuit, device), device)
        assert "~" in program.timeline()


class TestScheduleRendering:
    def test_multi_cycle_gate_marked_at_start(self, s17):
        schedule = asap_schedule(Circuit(4).cz(0, 3).x(0), s17)
        text = draw_schedule(schedule)
        assert "*" in text  # the CZ endpoints
        assert "X" in text

    def test_shuttle_symbols(self):
        from repro.devices import quantum_dot_device

        device = quantum_dot_device(1, 2)
        circuit = Circuit(2, [Gate("shuttle", (0, 1))])
        text = draw_circuit(circuit)
        assert text.count("#") == 0  # shuttle uses its own cells
        schedule = asap_schedule(circuit, device)
        assert draw_schedule(schedule)
