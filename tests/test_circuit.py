"""Unit tests for repro.core.circuit."""

import pytest

from repro.core import Circuit
from repro.core import gates as G


class TestConstruction:
    def test_empty(self):
        circuit = Circuit(3)
        assert len(circuit) == 0
        assert circuit.num_qubits == 3
        assert circuit.depth() == 0

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Circuit(-1)

    def test_append_validates_bounds(self):
        circuit = Circuit(2)
        with pytest.raises(ValueError):
            circuit.h(2)

    def test_builder_chaining(self):
        circuit = Circuit(2).h(0).cnot(0, 1).measure(1)
        assert [g.name for g in circuit] == ["h", "cnot", "measure"]

    def test_builders_cover_common_gates(self):
        circuit = Circuit(3)
        circuit.x(0).y(0).z(0).s(0).sdg(0).t(0).tdg(0).i(0)
        circuit.rx(0.1, 0).ry(0.2, 1).rz(0.3, 2).u(0.1, 0.2, 0.3, 0)
        circuit.cx(0, 1).cz(1, 2).cp(0.5, 0, 2).swap(0, 1)
        circuit.toffoli(0, 1, 2).fredkin(2, 0, 1).barrier()
        assert circuit.size() == 18  # barrier excluded

    def test_from_pairs(self):
        circuit = Circuit.from_pairs(3, [(0, 1), (1, 2)], gate="cz")
        assert [g.name for g in circuit] == ["cz", "cz"]

    def test_measure_all(self):
        circuit = Circuit(3).measure_all()
        assert circuit.count("measure") == 3

    def test_copy_is_independent(self):
        a = Circuit(2).h(0)
        b = a.copy()
        b.x(1)
        assert len(a) == 1 and len(b) == 2

    def test_equality(self):
        assert Circuit(2).h(0) == Circuit(2).h(0)
        assert Circuit(2).h(0) != Circuit(2).h(1)
        assert Circuit(2) != Circuit(3)


class TestAnalysis:
    def test_depth_sequential_on_one_qubit(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        assert circuit.depth() == 3

    def test_depth_parallel_gates(self):
        circuit = Circuit(2).h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_cnot_couples_lines(self):
        circuit = Circuit(2).h(0).cnot(0, 1).h(1)
        assert circuit.depth() == 3

    def test_two_qubit_depth_ignores_single_qubit_gates(self):
        circuit = Circuit(2).h(0).h(1).cnot(0, 1).h(0)
        assert circuit.depth(count_single_qubit=False) == 1

    def test_barrier_synchronises_depth(self):
        free = Circuit(2).h(0).barrier().h(1)
        assert free.depth() == 2  # barrier forces h(1) after h(0)

    def test_moments_partition_all_gates(self):
        circuit = Circuit(3).h(0).h(1).cnot(0, 1).cnot(1, 2).h(0)
        moments = circuit.moments()
        assert sum(len(m) for m in moments) == 5
        assert {g.name for g in moments[0]} == {"h"}
        assert len(moments) == circuit.depth()

    def test_gate_counts(self):
        circuit = Circuit(2).h(0).h(1).cnot(0, 1).barrier()
        counts = circuit.gate_counts()
        assert counts["h"] == 2 and counts["cnot"] == 1
        assert "barrier" not in counts

    def test_count_resolves_aliases(self):
        circuit = Circuit(2).cnot(0, 1)
        assert circuit.count("cx") == 1

    def test_two_qubit_helpers(self, ghz3):
        assert ghz3.num_two_qubit_gates() == 2
        assert [g.qubits for g in ghz3.two_qubit_gates()] == [(0, 1), (1, 2)]

    def test_used_qubits(self):
        circuit = Circuit(5).h(1).cnot(1, 3)
        assert circuit.used_qubits() == {1, 3}

    def test_interaction_pairs_unordered(self):
        circuit = Circuit(3).cnot(0, 1).cnot(1, 0).cz(2, 1)
        pairs = circuit.interaction_pairs()
        assert pairs[(0, 1)] == 2
        assert pairs[(1, 2)] == 1


class TestTransformation:
    def test_remap_qubits(self, ghz3):
        remapped = ghz3.remap_qubits({0: 2, 1: 0, 2: 1})
        assert remapped.gates[1].qubits == (2, 0)

    def test_remap_grows_circuit_when_needed(self, bell):
        remapped = bell.remap_qubits({0: 5, 1: 1})
        assert remapped.num_qubits == 6

    def test_remap_rejects_non_injective(self, bell):
        with pytest.raises(ValueError):
            bell.remap_qubits({0: 1, 1: 1})

    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(2).h(0).t(0).cnot(0, 1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["cnot", "tdg", "h"]

    def test_inverse_of_measurement_raises(self):
        with pytest.raises(ValueError):
            Circuit(1).measure(0).inverse()

    def test_without(self):
        circuit = Circuit(2).h(0).cnot(0, 1).h(1)
        assert circuit.without("h").size() == 1

    def test_only_two_qubit_matches_paper_fig1b(self):
        circuit = Circuit(2).h(0).cnot(0, 1).t(1).cnot(1, 0)
        skeleton = circuit.only_two_qubit()
        assert all(g.is_two_qubit for g in skeleton)
        assert skeleton.size() == 2

    def test_compose(self, bell, ghz3):
        combined = bell.compose(ghz3)
        assert combined.num_qubits == 3
        assert combined.size() == bell.size() + ghz3.size()

    def test_repr_mentions_counts(self, bell):
        text = repr(bell)
        assert "qubits=2" in text and "gates=2" in text
