"""Tests for ASAP/ALAP scheduling with gate durations."""

import pytest

from repro.core import Circuit
from repro.devices import surface17
from repro.mapping.scheduler import Schedule, ScheduledGate, alap_schedule, asap_schedule


class TestAsap:
    def test_sequential_durations_accumulate(self, s17):
        circuit = Circuit(1).x(0).x(0)
        schedule = asap_schedule(circuit, s17)
        assert [item.start for item in schedule] == [0, 1]
        assert schedule.latency == 2

    def test_parallel_gates_share_cycles(self, s17):
        circuit = Circuit(2).x(0).y(1)
        schedule = asap_schedule(circuit, s17)
        assert schedule.latency == 1

    def test_cz_duration_two_cycles(self, s17):
        circuit = Circuit(2).cz(0, 1).x(0)
        schedule = asap_schedule(circuit, s17)
        assert schedule.items[0].duration == 2
        assert schedule.items[1].start == 2
        assert schedule.latency == 3

    def test_measurement_duration(self, s17):
        circuit = Circuit(1).measure(0)
        assert asap_schedule(circuit, s17).latency == 30

    def test_barrier_synchronises_without_time(self, s17):
        circuit = Circuit(2).x(0).barrier().y(1)
        schedule = asap_schedule(circuit, s17)
        y_item = schedule.items[-1]
        assert y_item.start == 1  # waits for x despite acting on qubit 1
        assert schedule.latency == 2

    def test_latency_ns(self, s17):
        circuit = Circuit(1).x(0)
        assert asap_schedule(circuit, s17).latency_ns == 20.0

    def test_empty_circuit(self, s17):
        schedule = asap_schedule(Circuit(2), s17)
        assert schedule.latency == 0
        assert len(schedule) == 0


class TestAlap:
    def test_same_latency_as_asap(self, s17):
        circuit = Circuit(3).h(0).cz(0, 1).x(2).cz(1, 2)
        # decompose h first? h is not native but scheduling is
        # duration-only, so it still works with the default duration.
        asap = asap_schedule(circuit, s17)
        alap = alap_schedule(circuit, s17)
        assert asap.latency == alap.latency

    def test_gates_pushed_late(self, s17):
        # x(0) is independent of the two y(1) gates: ASAP starts it at 0,
        # ALAP delays it to the last cycle.
        circuit = Circuit(2).x(0).y(1).y(1)
        asap = asap_schedule(circuit, s17)
        alap = alap_schedule(circuit, s17)
        assert next(i for i in asap if i.gate.name == "x").start == 0
        assert next(i for i in alap if i.gate.name == "x").start == 1

    def test_no_overlaps(self, s17):
        circuit = Circuit(3).h(0).cz(0, 1).cz(1, 2).x(0).measure(2)
        assert alap_schedule(circuit, s17).validate() == []


class TestScheduleObject:
    def _simple(self, s17):
        return asap_schedule(Circuit(2).x(0).cz(0, 1).y(1), s17)

    def test_validate_detects_overlap(self):
        from repro.core.gates import Gate

        bad = Schedule(
            [
                ScheduledGate(Gate("x", (0,)), 0, 2),
                ScheduledGate(Gate("y", (0,)), 1, 1),
            ],
            1,
        )
        assert bad.validate()

    def test_validate_ok(self, s17):
        assert self._simple(s17).validate() == []

    def test_gates_starting_at(self, s17):
        schedule = self._simple(s17)
        assert len(schedule.gates_starting_at(0)) == 1

    def test_circuit_roundtrip_orders_by_start(self, s17):
        schedule = self._simple(s17)
        circuit = schedule.circuit()
        assert [g.name for g in circuit] == ["x", "cz", "y"]

    def test_parallelism_positive(self, s17):
        assert self._simple(s17).parallelism() > 0

    def test_table_mentions_latency(self, s17):
        table = self._simple(s17).table()
        assert "latency" in table and "cycle" in table

    def test_ordering_deterministic_under_item_permutation(self):
        # Regression: the gate lists were ordered by start cycle only
        # (circuit() by (start, qubits)), so items agreeing on those
        # keys kept their incidental input order and the same schedule
        # serialised differently depending on how it was built.  The
        # explicit (start, qubits, name) tie-break makes the order a
        # function of the schedule's content alone.
        from itertools import permutations

        from repro.core.gates import Gate

        items = [
            ScheduledGate(Gate("measure", (0,)), 0, 1),
            ScheduledGate(Gate("x", (0,), condition=(0, 1)), 0, 1),
            ScheduledGate(Gate("y", (1,)), 0, 1),
        ]
        reference = None
        for perm in permutations(items):
            schedule = Schedule(list(perm), 2)
            fingerprint = (
                [g.name for g in schedule.circuit()],
                schedule.table(),
            )
            if reference is None:
                reference = fingerprint
            assert fingerprint == reference
