"""Tests for the execution snapshot (Section VI-B)."""

import pytest

from repro.core import Circuit
from repro.core.snapshot import ExecutionSnapshot, GateColor
from repro.mapping.placement import FREE, Placement


class TestColours:
    def test_initial_colouring(self, s17, ghz3):
        snapshot = ExecutionSnapshot.begin(ghz3, s17)
        assert snapshot.colors[0] is GateColor.READY
        assert snapshot.colors[1] is GateColor.PENDING

    def test_schedule_recolours_successors(self, s17, ghz3):
        snapshot = ExecutionSnapshot.begin(ghz3, s17)
        snapshot.schedule(0, 0)
        assert snapshot.colors[0] is GateColor.DONE
        assert snapshot.colors[1] is GateColor.READY

    def test_cannot_schedule_pending(self, s17, ghz3):
        snapshot = ExecutionSnapshot.begin(ghz3, s17)
        with pytest.raises(ValueError):
            snapshot.schedule(1, 0)

    def test_cannot_schedule_twice(self, s17, ghz3):
        snapshot = ExecutionSnapshot.begin(ghz3, s17)
        snapshot.schedule(0, 0)
        with pytest.raises(ValueError):
            snapshot.schedule(0, 5)

    def test_finished(self, s17, bell):
        snapshot = ExecutionSnapshot.begin(bell, s17)
        assert not snapshot.finished()
        snapshot.schedule(0, 0)
        snapshot.schedule(1, 1)
        assert snapshot.finished()


class TestCompatibility:
    def test_busy_qubits_excluded(self, s17):
        circuit = Circuit(4).x(0).cz(0, 3)  # 0 and 3 are coupled on S-17
        snapshot = ExecutionSnapshot.begin(circuit, s17)
        snapshot.schedule(0, 0)  # x on qubit 0, busy during cycle 0
        assert 1 not in snapshot.compatible_gates(0)
        assert 1 in snapshot.compatible_gates(1)

    def test_disconnected_two_qubit_excluded(self, s17):
        circuit = Circuit(3).cz(0, 1)
        placement = Placement.from_partial({0: 1, 1: 7, 2: 2}, 3, 17)
        snapshot = ExecutionSnapshot.begin(circuit, s17, placement)
        # 1 and 7 are not connected on Surface-17.
        assert snapshot.compatible_gates(0) == []

    def test_non_native_excluded(self, s17, ghz3):
        snapshot = ExecutionSnapshot.begin(ghz3, s17)
        # h and cnot are not Surface-17 natives.
        assert snapshot.compatible_gates(0) == []


class TestPlacementTracking:
    def test_insert_swap_updates_current_not_initial(self, s17):
        circuit = Circuit(2).cz(0, 1)
        snapshot = ExecutionSnapshot.begin(circuit, s17)
        snapshot.insert_swap(0, 3, 0)
        assert snapshot.current_placement.phys(0) == 3
        assert snapshot.initial_placement.phys(0) == 0

    def test_insert_swap_requires_connection(self, s17):
        snapshot = ExecutionSnapshot.begin(Circuit(2), s17)
        with pytest.raises(ValueError):
            snapshot.insert_swap(1, 7, 0)

    def test_insert_swap_requires_free_qubits(self, s17):
        circuit = Circuit(1).x(0)
        snapshot = ExecutionSnapshot.begin(circuit, s17)
        snapshot.schedule(0, 0)
        with pytest.raises(ValueError):
            snapshot.insert_swap(0, 3, 0)

    def test_placement_array_has_free_marker(self, s17):
        snapshot = ExecutionSnapshot.begin(Circuit(2), s17)
        array = snapshot.placement_array()
        assert array[0] == 0 and array[1] == 1
        assert array[5] == FREE

    def test_scheduled_gate_uses_current_placement(self, s17):
        circuit = Circuit(1).x(0)
        snapshot = ExecutionSnapshot.begin(circuit, s17)
        snapshot.insert_swap(0, 3, 0)
        item = snapshot.schedule(0, snapshot.device.duration("swap"))
        assert item.gate.qubits == (3,)


class TestScheduleTable:
    def test_table_groups_by_cycle(self, s17):
        circuit = Circuit(2).x(0).y(1)
        snapshot = ExecutionSnapshot.begin(circuit, s17)
        snapshot.schedule(0, 0)
        snapshot.schedule(1, 0)
        table = snapshot.schedule_table()
        assert len(table[0]) == 2

    def test_busy_until_respected(self, s17):
        circuit = Circuit(1).x(0).y(0)
        snapshot = ExecutionSnapshot.begin(circuit, s17)
        snapshot.schedule(0, 0)
        with pytest.raises(ValueError):
            snapshot.schedule(1, 0)
        snapshot.schedule(1, 1)
        assert snapshot.finished()
