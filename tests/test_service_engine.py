"""Tests for the batch compile engine (repro.service.engine)."""

import time

import pytest

from repro.core.pipeline import PassConfig
from repro.devices import get_device
from repro.obs import Tracer, use_tracer
from repro.qasm import to_openqasm
from repro.service import CompileCache, CompileJob, CompileService
from repro.service.engine import run_payload
from repro.workloads import random_circuit


def _job(seed=1, router="sabre", **kwargs):
    qasm = to_openqasm(
        random_circuit(5, 12, seed=seed, two_qubit_fraction=0.6)
    )
    return CompileJob.create(
        qasm, get_device("ibm_qx4"), PassConfig(router=router), **kwargs
    )


class TestSubmit:
    def test_fresh_compile(self):
        service = CompileService(CompileCache())
        res = service.submit(_job())
        assert res.ok and res.status == "ok"
        assert res.cache_hit is None
        assert res.artifact["routing"]["added_swaps"] >= 0
        assert res.metrics["compile_s"] > 0

    def test_cache_hit_on_resubmit(self):
        service = CompileService(CompileCache())
        first = service.submit(_job(seed=2))
        second = service.submit(_job(seed=2))
        assert second.cache_hit == "memory"
        assert second.key == first.key
        assert second.artifact == first.artifact

    def test_result_reconstruction(self):
        service = CompileService(CompileCache())
        res = service.submit(_job(seed=3))
        rebuilt = res.result()
        assert rebuilt.routed.added_swaps == \
            res.artifact["routing"]["added_swaps"]

    def test_error_status_for_bad_qasm(self):
        service = CompileService(CompileCache())
        job = CompileJob(
            qasm="definitely not qasm",
            device=get_device("ibm_qx4").to_dict(),
            config=PassConfig(),
        )
        res = service.submit(job)
        assert res.status == "invalid" and not res.ok
        assert res.artifact is None and res.error

    def test_no_cache_service(self):
        service = CompileService(cache=None)
        a = service.submit(_job(seed=4))
        b = service.submit(_job(seed=4))
        assert a.ok and b.ok
        assert b.cache_hit is None  # nothing to hit


class TestSubmitBatch:
    def test_deterministic_ordering(self):
        service = CompileService(CompileCache())
        jobs = [_job(seed=s, job_id=f"job{s}") for s in range(6)]
        results = service.submit_batch(jobs)
        assert [r.job_id for r in results] == [j.job_id for j in jobs]

    def test_in_batch_dedup(self):
        service = CompileService(CompileCache())
        jobs = [_job(seed=9, job_id="a"), _job(seed=9, job_id="b")]
        results = service.submit_batch(jobs)
        assert results[0].ok and results[1].ok
        assert results[0].cache_hit is None
        assert results[1].cache_hit == "batch"
        assert results[0].artifact == results[1].artifact
        assert service.stats()["service"]["batch_dedup_hits"] == 1

    def test_pool_path_matches_inline(self):
        jobs = [_job(seed=s, job_id=f"j{s}") for s in range(4)]
        inline = CompileService(CompileCache()).submit_batch(jobs)
        pooled = CompileService(CompileCache(), max_workers=2).submit_batch(
            jobs
        )
        assert all(r.ok for r in pooled)
        for a, b in zip(inline, pooled):
            assert a.artifact == b.artifact

    def test_warm_batch_hits_cache(self):
        service = CompileService(CompileCache(), max_workers=2)
        jobs = [_job(seed=s) for s in range(3)]
        service.submit_batch(jobs)
        warm = service.submit_batch(jobs)
        assert all(r.cache_hit == "memory" for r in warm)

    def test_mixed_good_and_bad_jobs(self):
        service = CompileService(CompileCache())
        bad = CompileJob(
            qasm="nope",
            device=get_device("ibm_qx4").to_dict(),
            config=PassConfig(),
            job_id="bad",
        )
        results = service.submit_batch([_job(job_id="good"), bad])
        assert results[0].ok
        assert results[1].status == "invalid"


class TestFaultTolerance:
    """Timeout and crash handling on the pool path (test hooks)."""

    def test_per_job_timeout(self):
        service = CompileService(CompileCache(), max_workers=2)
        slow = _job(job_id="slow")
        slow.metadata["__test_hook__"] = "sleep:10"
        slow.timeout = 0.3
        res = service.submit_batch([slow])[0]
        assert res.status == "timeout" and not res.ok
        assert "0.3s compute budget" in res.error

    def test_crash_exhausts_retries(self):
        service = CompileService(CompileCache(), max_workers=2, retries=1)
        crasher = _job(job_id="crash")
        crasher.metadata["__test_hook__"] = "crash"
        res = service.submit_batch([crasher])[0]
        assert res.status == "crashed"
        assert "crashed" in res.error
        assert res.attempts == 2
        assert service.stats()["service"]["crash_failures"] == 1

    def test_compute_budget_measured_from_worker_start(self):
        # Regression: per-job budgets used to be measured from batch
        # dispatch, so jobs queued behind a full pool were billed for
        # their queue wait.  Two workers, four ~0.5s jobs, 0.9s budget:
        # with dispatch-measured budgets the second wave sits ~0.5s in
        # the queue and times out spuriously; with worker-start budgets
        # all four complete.
        service = CompileService(CompileCache(), max_workers=2)
        jobs = []
        for s in range(4):
            job = _job(seed=20 + s, job_id=f"w{s}")
            job.metadata["__test_hook__"] = "sleep:0.5"
            job.timeout = 0.9
            jobs.append(job)
        results = service.submit_batch(jobs)
        assert all(r.ok for r in results), [
            (r.job_id, r.status, r.error) for r in results
        ]

    def test_crash_does_not_starve_other_jobs(self):
        service = CompileService(CompileCache(), max_workers=2, retries=1)
        crasher = _job(job_id="crash")
        crasher.metadata["__test_hook__"] = "crash"
        good = _job(seed=5, job_id="good")
        results = service.submit_batch([crasher, good])
        by_id = {r.job_id: r for r in results}
        assert by_id["crash"].status == "crashed"
        assert by_id["good"].ok


class TestMonotonicClock:
    """Queue-wait timing uses the monotonic clock end to end.

    Regression tests for the wall/monotonic clock mix: dispatch used to
    be stamped with ``time.time()`` while durations came from
    ``time.perf_counter()``, and a ``max(0.0, ...)`` clamp hid the
    resulting negative queue waits whenever the wall clock stepped.
    """

    def test_run_payload_reports_monotonic_start(self):
        before = time.monotonic()
        outcome = run_payload(_job(seed=11).payload())
        after = time.monotonic()
        # Pre-fix outcomes carried a wall-clock "started_at" instead.
        assert "started_at" not in outcome
        assert before <= outcome["started_mono"] <= after

    def test_run_payload_echoes_dispatch_mono(self):
        mark = time.monotonic()
        outcome = run_payload(_job(seed=11).payload(), dispatch_mono=mark)
        assert outcome["dispatch_mono"] == mark
        assert outcome["started_mono"] >= mark

    def test_queue_wait_immune_to_wall_clock_jumps(self, monkeypatch):
        # A wall clock stepping forward ~500s per reading (NTP slew,
        # suspend/resume) must not leak into queue_wait_s.  Pre-fix,
        # dispatch was time.time() and the worker's start was also
        # time.time(), so a jump between the two readings showed up as
        # hundreds of seconds of phantom queue wait.
        real_time = time.time
        jump = [0.0]

        def jumping_time():
            jump[0] += 500.0
            return real_time() + jump[0]

        monkeypatch.setattr(time, "time", jumping_time)
        service = CompileService(CompileCache())
        res = service.submit(_job(seed=12))
        assert res.ok
        assert 0.0 <= res.metrics["queue_wait_s"] < 10.0

    def test_negative_wait_not_clamped(self):
        # _finish must report what the clocks say; the old max(0.0, ...)
        # clamp silently converted clock bugs into a zero wait.
        service = CompileService(CompileCache())
        job = _job(seed=13)
        outcome = run_payload(job.payload())
        res = service._finish(
            job, job.key(), dict(outcome, started_mono=outcome["started_mono"] - 1.0),
            outcome["started_mono"], attempts=1,
        )
        assert res.metrics["queue_wait_s"] == pytest.approx(-1.0, abs=0.01)

    def test_batch_queue_waits_never_negative(self):
        service = CompileService(CompileCache(), max_workers=2)
        jobs = [_job(seed=s, job_id=f"q{s}") for s in range(4)]
        results = service.submit_batch(jobs)
        assert all(r.ok for r in results)
        for res in results:
            assert res.metrics["queue_wait_s"] >= 0.0
        assert service.stats()["service"]["queue_wait_seconds"] >= 0.0


class TestTracedBatches:
    def test_pool_batch_absorbs_worker_spans(self):
        tracer = Tracer()
        service = CompileService(CompileCache(), max_workers=2)
        jobs = [_job(seed=s, job_id=f"t{s}") for s in range(3)]
        with use_tracer(tracer):
            results = service.submit_batch(jobs)
        assert all(r.ok for r in results)
        events = tracer.finished()
        job_roots = [e for e in events if e["name"] == "job"]
        assert len(job_roots) == 3
        # Worker-side pipeline stages crossed the process boundary.
        passes = {e.get("pass") for e in events}
        assert {"placement", "routing", "schedule"} <= passes
        # Cache lookups are parent-side spans in the same tracer.
        assert "cache" in passes

    def test_trace_report_shape(self):
        tracer = Tracer()
        service = CompileService(CompileCache(), max_workers=2)
        jobs = [_job(seed=s, job_id=f"r{s}") for s in range(3)]
        with use_tracer(tracer):
            results = service.submit_batch(jobs)
        assert all(r.ok for r in results)
        report = service.trace_report(tracer)
        assert report["schema"] == 1
        assert {row["job_id"] for row in report["jobs"]} == {"r0", "r1", "r2"}
        for row in report["jobs"]:
            assert row["total_s"] > 0
            assert "routing" in row["passes"]
            # Stage spans cover most of the job, never more than all of it.
            covered = sum(row["passes"].values())
            assert 0 < covered <= row["total_s"] * 1.01
        assert report["stats"]["service"]["fresh_compiles"] == 3

    def test_untraced_batch_ships_no_spans(self):
        outcome = run_payload(_job(seed=14).payload(), trace=False)
        assert "spans" not in outcome


class TestStats:
    def test_counters(self):
        service = CompileService(CompileCache())
        jobs = [_job(seed=s) for s in range(2)]
        service.submit_batch(jobs)
        service.submit_batch(jobs)
        stats = service.stats()
        svc = stats["service"]
        assert svc["jobs_submitted"] == 4
        assert svc["batches"] == 2
        assert svc["fresh_compiles"] == 2
        assert svc["cache_hits"] == 2
        assert svc["hit_rate"] == pytest.approx(0.5)
        assert stats["cache"]["memory_entries"] == 2

    def test_job_result_to_dict(self):
        service = CompileService(CompileCache())
        res = service.submit(_job(seed=6))
        data = res.to_dict()
        assert data["status"] == "ok"
        assert "artifact" not in data
        assert "added_swaps" in data["metrics"]
        full = res.to_dict(include_artifact=True)
        assert full["artifact"]["routing"]["added_swaps"] >= 0


class TestClose:
    def test_close_is_idempotent(self):
        service = CompileService(CompileCache(), max_workers=2)
        service.submit_batch([_job(seed=s) for s in range(2)])
        service.close()
        service.close()  # second close is a no-op, not an error

    def test_service_usable_again_after_close(self):
        service = CompileService(CompileCache(), max_workers=2)
        assert service.submit_batch([_job(seed=7)])[0].ok
        service.close()
        # A new batch lazily respawns the pool.
        assert service.submit_batch([_job(seed=8)])[0].ok
        service.close()

    def test_concurrent_close_during_inflight_batch(self):
        import threading

        service = CompileService(CompileCache(), max_workers=2)
        jobs = [
            _job(
                seed=20 + i, job_id=f"slow{i}",
                metadata={"__test_hook__": "sleep:0.5"},
            )
            for i in range(4)
        ]
        closer = threading.Timer(0.15, service.close)
        closer.start()
        try:
            results = service.submit_batch(jobs)
        finally:
            closer.join()
        # No exception escaped, and every job still reached exactly one
        # terminal status (completed before the close, or reported as
        # crashed by the shutdown mop-up).
        from repro.service import JOB_STATUSES

        assert len(results) == len(jobs)
        assert all(r.status in JOB_STATUSES for r in results)
        service.close()


class TestBatchEvents:
    def test_on_event_lifecycle_ordering(self):
        events = []
        service = CompileService(CompileCache(), max_workers=2)
        jobs = [_job(seed=30 + i, job_id=f"e{i}") for i in range(3)]
        results = service.submit_batch(
            jobs, on_event=lambda i, kind, info=None: events.append((i, kind))
        )
        service.close()
        assert all(r.ok for r in results)
        for i in range(len(jobs)):
            kinds = [kind for j, kind in events if j == i]
            assert kinds[-1] == "done"
            assert kinds.index("started") < kinds.index("done")

    def test_on_event_fires_done_for_cache_hits(self):
        events = []
        service = CompileService(CompileCache())
        job = _job(seed=31)
        service.submit(job)
        service.submit_batch(
            [job], on_event=lambda i, kind, info=None:
            events.append((kind, info))
        )
        kinds = [kind for kind, _ in events]
        assert kinds == ["done"]
        assert events[0][1].cache_hit == "memory"
        service.close()

    def test_on_event_exceptions_do_not_kill_the_batch(self):
        def bomb(i, kind, info=None):
            raise RuntimeError("observer bug")

        service = CompileService(CompileCache())
        results = service.submit_batch([_job(seed=32)], on_event=bomb)
        assert results[0].ok
        service.close()
