"""Semantic tests for the workload generators."""

import numpy as np
import pytest

from repro.core import Circuit
from repro.sim import StateVector, simulate
from repro.workloads import (
    WORKLOADS,
    bernstein_vazirani,
    cuccaro_adder,
    get_workload,
    ghz,
    grover,
    qft,
    quantum_volume_layers,
    random_circuit,
    random_cnot_circuit,
    random_clifford_t,
)


class TestGHZ:
    def test_state_is_ghz(self):
        state = simulate(ghz(3))
        assert abs(state[0]) ** 2 == pytest.approx(0.5)
        assert abs(state[7]) ** 2 == pytest.approx(0.5)

    def test_single_qubit(self):
        state = simulate(ghz(1))
        assert abs(state[0]) ** 2 == pytest.approx(0.5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ghz(0)


class TestQFT:
    def test_qft_of_zero_is_uniform(self):
        state = simulate(qft(3))
        assert np.allclose(np.abs(state), 1 / np.sqrt(8))

    def test_qft_matches_dft_matrix(self):
        from repro.sim import circuit_unitary

        n = 3
        dim = 2**n
        got = circuit_unitary(qft(n))
        omega = np.exp(2j * np.pi / dim)
        dft = np.array(
            [[omega ** (r * c) for c in range(dim)] for r in range(dim)]
        ) / np.sqrt(dim)
        assert np.allclose(got, dft, atol=1e-8)

    def test_without_final_swaps(self):
        assert qft(4, include_swaps=False).count("swap") == 0


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["0", "1", "101", "1111", "0010"])
    def test_recovers_secret(self, secret):
        sv = StateVector(len(secret) + 1, rng=np.random.default_rng(1))
        sv.run(bernstein_vazirani(secret))
        measured = "".join(str(sv.results[q]) for q in range(len(secret)))
        assert measured == secret

    def test_single_query(self):
        assert bernstein_vazirani("110").count("cnot") == 2

    def test_invalid_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani("")
        with pytest.raises(ValueError):
            bernstein_vazirani("102")


class TestGrover:
    @pytest.mark.parametrize("num_qubits,marked", [(2, 0), (2, 3), (3, 5)])
    def test_amplifies_marked_state(self, num_qubits, marked):
        state = simulate(grover(num_qubits, marked))
        assert abs(state[marked]) ** 2 > 0.75

    def test_two_qubit_single_iteration_is_exact(self):
        state = simulate(grover(2, 1))
        assert abs(state[1]) ** 2 == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            grover(4, 0)
        with pytest.raises(ValueError):
            grover(2, 7)


class TestAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 0), (1, 1), (2, 3), (3, 3)])
    def test_two_bit_addition(self, a, b):
        bits = 2
        n = 2 * bits + 2
        prep = Circuit(n)
        for i in range(bits):
            if (a >> i) & 1:
                prep.x(1 + 2 * i)
            if (b >> i) & 1:
                prep.x(2 + 2 * i)
        state = simulate(prep.compose(cuccaro_adder(bits)))
        index = int(np.argmax(np.abs(state)))
        assert abs(state[index]) ** 2 == pytest.approx(1.0)
        bitstring = format(index, f"0{n}b")  # qubit 0 first
        total = b + a
        got_b = sum(int(bitstring[2 + 2 * i]) << i for i in range(bits))
        got_carry = int(bitstring[n - 1])
        assert got_b + (got_carry << bits) == total
        got_a = sum(int(bitstring[1 + 2 * i]) << i for i in range(bits))
        assert got_a == a  # a register preserved

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            cuccaro_adder(0)


class TestHardwareEfficientAnsatz:
    def test_structure(self):
        from repro.workloads import hardware_efficient_ansatz

        circuit = hardware_efficient_ansatz(4, 3, seed=1)
        assert circuit.num_two_qubit_gates() == 12  # ring of 4 per layer
        assert circuit.count("ry") == 12 and circuit.count("rz") == 12
        pairs = set(circuit.interaction_pairs())
        assert pairs == {(0, 1), (1, 2), (2, 3), (0, 3)}  # the cycle

    def test_seeded(self):
        from repro.workloads import hardware_efficient_ansatz

        assert hardware_efficient_ansatz(4, 2, seed=7) == (
            hardware_efficient_ansatz(4, 2, seed=7)
        )

    def test_invalid_width(self):
        from repro.workloads import hardware_efficient_ansatz

        with pytest.raises(ValueError):
            hardware_efficient_ansatz(1, 2)


class TestRandomGenerators:
    def test_random_circuit_reproducible(self):
        assert random_circuit(4, 20, seed=5) == random_circuit(4, 20, seed=5)
        assert random_circuit(4, 20, seed=5) != random_circuit(4, 20, seed=6)

    def test_two_qubit_fraction_extremes(self):
        only_2q = random_circuit(4, 30, two_qubit_fraction=1.0, seed=1)
        assert only_2q.num_two_qubit_gates() == 30
        only_1q = random_circuit(4, 30, two_qubit_fraction=0.0, seed=1)
        assert only_1q.num_two_qubit_gates() == 0

    def test_random_circuit_guards_width(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)

    def test_random_cnot_circuit(self):
        circuit = random_cnot_circuit(5, 12, seed=2)
        assert circuit.size() == 12
        assert all(g.name == "cnot" for g in circuit)

    def test_random_clifford_t_gate_set(self):
        circuit = random_clifford_t(4, 40, seed=3)
        assert {g.name for g in circuit} <= {"h", "s", "t", "cnot"}

    def test_quantum_volume_layers(self):
        circuit = quantum_volume_layers(6, 4, seed=7)
        # 3 pairs per layer, 4 layers.
        assert circuit.num_two_qubit_gates() == 12


class TestRegistry:
    def test_all_entries_build(self):
        for name in WORKLOADS:
            circuit = get_workload(name)
            assert isinstance(circuit, Circuit)
            assert circuit.size() > 0

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("factoring")
