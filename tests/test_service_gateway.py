"""Tests for the async job gateway (repro.service.gateway).

Covers the submit/await API, event streams, priority-queue semantics
under contention, typed admission-control rejections, queued-past-SLO
short-circuits, and the end-to-end acceptance scenario: a mixed
two-tier batch with injected crash and hang faults where every job
still reaches exactly one terminal status.
"""

import asyncio
import time

import pytest

from repro.core.pipeline import PassConfig
from repro.devices import get_device
from repro.qasm import to_openqasm
from repro.resilience import FaultPlan, FaultSpec
from repro.service import (
    JOB_STATUSES,
    AsyncCompileService,
    CompileCache,
    CompileJob,
    CompileService,
    Draining,
    Overloaded,
)
from repro.workloads import random_circuit


def _job(seed=1, router="sabre", **kwargs):
    qasm = to_openqasm(
        random_circuit(5, 12, seed=seed, two_qubit_fraction=0.6)
    )
    return CompileJob.create(
        qasm, get_device("ibm_qx4"), PassConfig(router=router), **kwargs
    )


@pytest.fixture
def service():
    svc = CompileService(CompileCache(), max_workers=2)
    yield svc
    svc.close()


class TestSubmitAwait:
    def test_submit_returns_immediately_and_result_awaits(self, service):
        gw = AsyncCompileService(service)
        handle = gw.submit(_job(seed=11, job_id="await-me"))
        assert handle.job_id == "await-me"

        async def consume():
            return await handle.result()

        result = asyncio.run(consume())
        assert result.status == "ok"
        assert result.job_id == "await-me"
        assert handle.done() and handle.status == "ok"
        gw.close()

    def test_sync_wait_and_handle_lookup(self, service):
        gw = AsyncCompileService(service)
        handle = gw.submit(_job(seed=12, job_id="sync-me"))
        result = handle.wait(timeout=120)
        assert result.status == "ok"
        assert gw.get("sync-me") is handle
        assert gw.get("never-submitted") is None
        gw.close()

    def test_owned_service_built_and_closed_by_gateway(self):
        gw = AsyncCompileService()  # builds its own CompileService
        assert gw._owns_service
        result = gw.submit(_job(seed=13)).wait(timeout=120)
        assert result.status == "ok"
        gw.close()


class TestEvents:
    def test_lifecycle_stream_ends_at_terminal(self, service):
        gw = AsyncCompileService(service)

        async def consume():
            handle = gw.submit(_job(seed=21, job_id="evt"))
            return [evt async for evt in handle.events()]

        events = asyncio.run(consume())
        kinds = [evt["event"] for evt in events]
        assert kinds[0] == "queued"
        assert kinds[-1] in JOB_STATUSES
        assert events[-1]["terminal"] is True
        # Exactly one terminal event, and nothing after it.
        assert sum(1 for evt in events if evt.get("terminal")) == 1
        gw.close()

    def test_late_attach_replays_history(self, service):
        gw = AsyncCompileService(service)
        handle = gw.submit(_job(seed=22, job_id="late"))
        handle.wait(timeout=120)  # finish first, then attach

        async def consume():
            return [evt async for evt in handle.events()]

        events = asyncio.run(consume())
        assert [evt["event"] for evt in events][-1] == "ok"
        assert events[-1]["terminal"] is True
        gw.close()

    def test_event_log_snapshot(self, service):
        gw = AsyncCompileService(service)
        handle = gw.submit(_job(seed=23))
        handle.wait(timeout=120)
        log = handle.event_log()
        assert log[0]["event"] == "queued"
        assert log[-1]["terminal"] is True
        gw.close()


class TestPriorityQueue:
    def test_interactive_dispatches_before_earlier_batch(self, service):
        gw = AsyncCompileService(service, auto_dispatch=False, micro_batch=4)
        batch = [
            gw.submit(_job(seed=30 + i, job_id=f"b{i}"), priority="batch")
            for i in range(4)
        ]
        inter = [
            gw.submit(
                _job(seed=40 + i, job_id=f"i{i}"), priority="interactive"
            )
            for i in range(4)
        ]
        gw.start()
        for handle in batch + inter:
            handle.wait(timeout=120)
        # Every interactive job drained before any batch job, although
        # every batch job was submitted first.
        max_inter = max(h.dispatch_index for h in inter)
        min_batch = min(h.dispatch_index for h in batch)
        assert max_inter < min_batch
        gw.close()

    def test_fifo_within_a_tier(self, service):
        gw = AsyncCompileService(service, auto_dispatch=False)
        handles = [
            gw.submit(_job(seed=50 + i, job_id=f"f{i}"), priority="batch")
            for i in range(4)
        ]
        gw.start()
        for handle in handles:
            handle.wait(timeout=120)
        order = [h.dispatch_index for h in handles]
        assert order == sorted(order)
        gw.close()

    def test_unknown_priority_rejected(self, service):
        gw = AsyncCompileService(service)
        with pytest.raises(ValueError, match="unknown priority"):
            gw.submit(_job(seed=55), priority="urgent")
        gw.close()


class TestAdmissionControl:
    def test_queue_depth_cap_rejects_typed(self, service):
        gw = AsyncCompileService(
            service, auto_dispatch=False, max_queue_depth=3
        )
        for i in range(3):
            gw.submit(_job(seed=60 + i, job_id=f"q{i}"))
        with pytest.raises(Overloaded) as excinfo:
            gw.submit(_job(seed=69, job_id="overflow"))
        assert excinfo.value.reason == "queue_full"
        assert gw.stats()["gateway"]["rejected_queue_full"] == 1
        # The rejected job never entered the queue.
        assert gw.get("overflow") is None
        gw.close()

    def test_tenant_budget_rejects_only_that_tenant(self, service):
        gw = AsyncCompileService(
            service, auto_dispatch=False, tenant_burst=2, tenant_rate=0.0
        )
        gw.submit(_job(seed=70, job_id="t0"), tenant="alice")
        gw.submit(_job(seed=71, job_id="t1"), tenant="alice")
        with pytest.raises(Overloaded) as excinfo:
            gw.submit(_job(seed=72, job_id="t2"), tenant="alice")
        assert excinfo.value.reason == "tenant_budget"
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.retry_after is None  # rate 0: never refills
        # A different tenant still has budget.
        handle = gw.submit(_job(seed=73, job_id="t3"), tenant="bob")
        assert handle.status == "queued"
        assert gw.stats()["gateway"]["rejected_tenant_budget"] == 1
        gw.close()

    def test_tenant_bucket_refills(self, service):
        gw = AsyncCompileService(
            service, auto_dispatch=False, tenant_burst=1, tenant_rate=50.0
        )
        gw.submit(_job(seed=74, job_id="r0"))
        with pytest.raises(Overloaded) as excinfo:
            gw.submit(_job(seed=75, job_id="r1"))
        assert excinfo.value.retry_after is not None
        time.sleep(excinfo.value.retry_after + 0.05)
        gw.submit(_job(seed=76, job_id="r2"))  # refilled: admitted
        gw.close()

    def test_token_bucket_rate_zero_never_divides(self):
        # Burst-only budget: rate=0 must mean "no retry time", never a
        # ZeroDivisionError from dividing by the refill rate.
        from repro.service.gateway import _TokenBucket

        bucket = _TokenBucket(capacity=2, rate=0.0)
        now = time.monotonic()
        assert bucket.try_take(now)
        assert bucket.try_take(now)
        assert not bucket.try_take(now)
        assert bucket.retry_after() is None
        # The bucket stays closed forever: even an hour of simulated
        # elapsed time refills nothing.
        assert not bucket.try_take(now + 3600.0)
        assert bucket.retry_after() is None

    def test_draining_rejects_submissions(self, service):
        gw = AsyncCompileService(service)
        gw.close()
        with pytest.raises(Draining):
            gw.submit(_job(seed=77))


class TestDeadlines:
    def test_queued_past_deadline_never_touches_a_worker(self, service):
        gw = AsyncCompileService(service, auto_dispatch=False)
        handle = gw.submit(_job(seed=80, job_id="slo"), deadline=0.02)
        time.sleep(0.1)  # expire in the queue
        gw.start()
        result = handle.wait(timeout=30)
        assert result.status == "timeout"
        assert result.attempts == 0
        assert "SLO" in result.error
        stats = gw.stats()
        assert stats["gateway"]["deadline_drops"] == 1
        # The short-circuit happened inside the gateway: the compile
        # service never saw the job.
        assert stats["service"]["jobs_submitted"] == 0
        gw.close()

    def test_live_deadline_threads_remaining_budget_into_job(self, service):
        gw = AsyncCompileService(service, auto_dispatch=False)
        handle = gw.submit(_job(seed=81, job_id="live"), deadline=60.0)
        assert handle.job.deadline is None  # set only at dispatch
        gw.start()
        result = handle.wait(timeout=120)
        assert result.status == "ok"
        assert handle.job.deadline is not None
        assert 0 < handle.job.deadline <= 60.0
        gw.close()


class TestStats:
    def test_stats_shape_and_tier_percentiles(self, service):
        gw = AsyncCompileService(service)
        handles = [
            gw.submit(
                _job(seed=90 + i, job_id=f"s{i}"),
                priority="interactive" if i % 2 else "batch",
            )
            for i in range(4)
        ]
        for handle in handles:
            handle.wait(timeout=120)
        stats = gw.stats()
        gw_stats = stats["gateway"]
        assert gw_stats["submitted"] == 4
        assert gw_stats["admitted"] == 4
        assert gw_stats["dispatched"] == 4
        assert gw_stats["completed"].get("ok") == 4
        assert gw_stats["queue_depth"] == 0
        for tier in ("interactive", "batch"):
            tier_stats = gw_stats["tiers"][tier]
            assert tier_stats["n"] == 2
            assert tier_stats["queue_wait_p50_ms"] >= 0
            assert tier_stats["latency_p50_ms"] > 0
        assert gw_stats["job_latency_p50_ms"] > 0
        # The underlying service sections ride along.
        assert "service" in stats and "pool" in stats and "cache" in stats
        gw.close()


class TestCloseSemantics:
    def test_close_without_drain_abandons_queue(self, service):
        gw = AsyncCompileService(service, auto_dispatch=False)
        handles = [
            gw.submit(_job(seed=100 + i, job_id=f"a{i}")) for i in range(3)
        ]
        gw.close(drain=False)
        for handle in handles:
            result = handle.wait(timeout=10)
            assert result.status == "crashed"
            assert "shut down" in result.error
            assert result.attempts == 0

    def test_close_with_drain_finishes_queue(self, service):
        gw = AsyncCompileService(service, auto_dispatch=False)
        handles = [
            gw.submit(_job(seed=110 + i, job_id=f"d{i}")) for i in range(3)
        ]
        gw.close(drain=True)
        for handle in handles:
            assert handle.wait(timeout=120).status == "ok"

    def test_close_idempotent(self, service):
        gw = AsyncCompileService(service)
        gw.close()
        gw.close()

    def test_context_manager(self, service):
        with AsyncCompileService(service) as gw:
            result = gw.submit(_job(seed=115)).wait(timeout=120)
            assert result.status == "ok"
        assert gw.draining


class TestEndToEndAcceptance:
    def test_mixed_tiers_with_faults_all_terminal(self):
        """The ISSUE acceptance scenario: >=20 jobs across two tiers
        with one injected crash and one injected hang; every job ends
        terminal, interactive queue waits beat batch, and the job past
        the admission cap is rejected with a typed error."""
        plan = FaultPlan(specs=(
            FaultSpec(stage="worker", action="crash", job_id="b3",
                      times=None),
            FaultSpec(stage="worker", action="hang", job_id="b5",
                      times=None, delay=30.0),
        ), seed=7)
        service = CompileService(
            CompileCache(), max_workers=2, retries=1,
            default_timeout=2.0, fault_plan=plan,
        )
        gw = AsyncCompileService(
            service, auto_dispatch=False, max_queue_depth=20, micro_batch=4
        )
        handles = {}
        for i in range(10):
            handles[f"b{i}"] = gw.submit(
                _job(seed=200 + i, job_id=f"b{i}"), priority="batch"
            )
        for i in range(10):
            handles[f"i{i}"] = gw.submit(
                _job(seed=300 + i, job_id=f"i{i}"), priority="interactive"
            )
        # The queue is at its 20-job cap: admission rejects the 21st.
        with pytest.raises(Overloaded) as excinfo:
            gw.submit(_job(seed=400, job_id="overflow"))
        assert excinfo.value.reason == "queue_full"

        gw.start()
        results = {
            job_id: handle.wait(timeout=300)
            for job_id, handle in handles.items()
        }

        # Every job reached exactly one terminal status.
        assert all(r.status in JOB_STATUSES for r in results.values())
        assert results["b3"].status == "crashed"
        assert results["b5"].status == "timeout"
        clean = [r for job_id, r in results.items()
                 if job_id not in ("b3", "b5")]
        assert all(r.status == "ok" for r in clean)

        # Interactive jobs jumped the earlier-submitted batch tier.
        tiers = gw.stats()["gateway"]["tiers"]
        assert tiers["interactive"]["queue_wait_p50_ms"] \
            < tiers["batch"]["queue_wait_p50_ms"]
        gw.close()
        service.close()
