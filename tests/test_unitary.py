"""Unit tests for repro.sim.unitary."""

import numpy as np
import pytest

from repro.core import Circuit
from repro.core import gates as G
from repro.sim import (
    allclose_up_to_global_phase,
    circuit_unitary,
    gate_unitary,
    permutation_unitary,
    simulate,
    zero_state,
)


class TestCircuitUnitary:
    def test_identity_for_empty_circuit(self):
        assert np.allclose(circuit_unitary(Circuit(2)), np.eye(4))

    def test_matches_statevector_simulation(self):
        circuit = Circuit(3).h(0).cnot(0, 1).t(2).cz(1, 2).swap(0, 2)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary @ zero_state(3), simulate(circuit))

    def test_is_unitary(self):
        circuit = Circuit(2).h(0).cnot(0, 1).rz(0.3, 1)
        u = circuit_unitary(circuit)
        assert np.allclose(u @ u.conj().T, np.eye(4), atol=1e-10)

    def test_barriers_ignored(self):
        a = Circuit(2).h(0).barrier().cnot(0, 1)
        b = Circuit(2).h(0).cnot(0, 1)
        assert np.allclose(circuit_unitary(a), circuit_unitary(b))

    def test_measurement_rejected(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(1).measure(0))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(13))

    def test_gate_unitary_embedding(self):
        # CNOT(0, 2) on three qubits: |100> -> |101>.
        u = gate_unitary(G.cnot(0, 2), 3)
        state = u @ (np.eye(8)[:, 0b100])
        assert state[0b101] == 1

    def test_gate_unitary_rejects_nonunitary(self):
        with pytest.raises(ValueError):
            gate_unitary(G.measure(0), 2)


class TestPermutationUnitary:
    def test_identity(self):
        assert np.allclose(permutation_unitary([0, 1, 2], 3), np.eye(8))

    def test_swap_matches_swap_gate(self):
        perm = permutation_unitary([1, 0], 2)
        assert np.allclose(perm, G.swap(0, 1).matrix())

    def test_three_cycle(self):
        # qubit0 -> line1, qubit1 -> line2, qubit2 -> line0.
        perm = permutation_unitary([1, 2, 0], 3)
        state = perm @ (np.eye(8)[:, 0b100])  # qubit0 was 1
        assert state[0b010] == 1  # now on line 1

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_unitary([0, 0], 2)


class TestGlobalPhase:
    def test_equal_matrices(self):
        m = circuit_unitary(Circuit(1).h(0))
        assert allclose_up_to_global_phase(m, m)

    def test_phase_factor_accepted(self):
        m = circuit_unitary(Circuit(1).t(0))
        assert allclose_up_to_global_phase(m, np.exp(1j * 0.7) * m)

    def test_different_matrices_rejected(self):
        a = circuit_unitary(Circuit(1).h(0))
        b = circuit_unitary(Circuit(1).t(0))
        assert not allclose_up_to_global_phase(a, b)

    def test_scaling_rejected(self):
        m = np.eye(2)
        assert not allclose_up_to_global_phase(m, 2 * m)

    def test_shape_mismatch_rejected(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.eye(4))

    def test_known_identity_z_equals_hxh(self):
        z = circuit_unitary(Circuit(1).z(0))
        hxh = circuit_unitary(Circuit(1).h(0).x(0).h(0))
        assert allclose_up_to_global_phase(z, hxh)

    def test_known_identity_swap_equals_three_cnots(self):
        swap = circuit_unitary(Circuit(2).swap(0, 1))
        cnots = circuit_unitary(Circuit(2).cnot(0, 1).cnot(1, 0).cnot(0, 1))
        assert allclose_up_to_global_phase(swap, cnots)
