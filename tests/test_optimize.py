"""Tests for the peephole optimisation passes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Circuit
from repro.optimize import (
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    merge_rotations,
    optimize_circuit,
    remove_identities,
)
from repro.verify import equivalent_circuits


class TestCancelInversePairs:
    def test_adjacent_hadamards_cancel(self):
        circuit = Circuit(1).h(0).h(0)
        assert cancel_inverse_pairs(circuit).size() == 0

    def test_adjacent_cnots_cancel(self):
        circuit = Circuit(2).cnot(0, 1).cnot(0, 1)
        assert cancel_inverse_pairs(circuit).size() == 0

    def test_t_tdg_cancel(self):
        circuit = Circuit(1).t(0).tdg(0)
        assert cancel_inverse_pairs(circuit).size() == 0

    def test_reversed_cnot_does_not_cancel(self):
        circuit = Circuit(2).cnot(0, 1).cnot(1, 0)
        assert cancel_inverse_pairs(circuit).size() == 2

    def test_reversed_cz_cancels(self):
        circuit = Circuit(2).cz(0, 1).cz(1, 0)
        assert cancel_inverse_pairs(circuit).size() == 0

    def test_cancellation_through_unrelated_gates(self):
        circuit = Circuit(3).h(0).x(1).t(2).h(0)
        optimised = cancel_inverse_pairs(circuit)
        assert optimised.count("h") == 0
        assert optimised.size() == 2

    def test_blocked_by_intervening_gate_on_same_qubit(self):
        circuit = Circuit(1).h(0).t(0).h(0)
        assert cancel_inverse_pairs(circuit).size() == 3

    def test_blocked_by_partial_overlap(self):
        circuit = Circuit(2).cnot(0, 1).t(1).cnot(0, 1)
        assert cancel_inverse_pairs(circuit).size() == 3

    def test_barrier_blocks(self):
        circuit = Circuit(1).h(0).barrier().h(0)
        assert cancel_inverse_pairs(circuit).count("h") == 2

    def test_cascading_needs_fixed_point(self):
        # h t tdg h: one sweep kills t/tdg, the next kills h/h.
        circuit = Circuit(1).h(0).t(0).tdg(0).h(0)
        assert optimize_circuit(circuit).size() == 0

    def test_rotation_with_negated_angle_cancels(self):
        circuit = Circuit(1).rx(0.7, 0).rx(-0.7, 0)
        assert optimize_circuit(circuit).size() == 0


class TestMergeRotations:
    def test_same_axis_merge(self):
        circuit = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        merged = merge_rotations(circuit)
        assert merged.size() == 1
        assert merged.gates[0].params[0] == pytest.approx(0.7)

    def test_long_chain_merges(self):
        circuit = Circuit(1)
        for _ in range(5):
            circuit.rx(0.2, 0)
        merged = merge_rotations(circuit)
        assert merged.size() == 1
        assert merged.gates[0].params[0] == pytest.approx(1.0)

    def test_full_turn_vanishes(self):
        circuit = Circuit(1).rz(2 * math.pi, 0).rz(2 * math.pi, 0)
        assert merge_rotations(circuit).size() == 0

    def test_different_axes_do_not_merge(self):
        circuit = Circuit(1).rx(0.3, 0).ry(0.3, 0)
        assert merge_rotations(circuit).size() == 2

    def test_blocked_by_two_qubit_gate(self):
        circuit = Circuit(2).rz(0.3, 0).cnot(0, 1).rz(0.4, 0)
        assert merge_rotations(circuit).size() == 3

    def test_controlled_phase_merges_symmetrically(self):
        circuit = Circuit(2).cp(0.3, 0, 1).cp(0.4, 1, 0)
        merged = merge_rotations(circuit)
        assert merged.size() == 1
        assert merged.gates[0].params[0] == pytest.approx(0.7)

    def test_crz_requires_same_orientation(self):
        from repro.core.gates import Gate

        circuit = Circuit(2, [Gate("crz", (0, 1), (0.3,)), Gate("crz", (1, 0), (0.4,))])
        assert merge_rotations(circuit).size() == 2


class TestFuseSingleQubitRuns:
    def test_run_becomes_single_u(self):
        circuit = Circuit(1).h(0).t(0).h(0).s(0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.size() == 1
        assert fused.gates[0].name == "u"
        assert equivalent_circuits(circuit, fused)

    def test_identity_run_vanishes(self):
        circuit = Circuit(1).h(0).h(0)
        assert fuse_single_qubit_runs(circuit).size() == 0

    def test_runs_split_by_two_qubit_gates(self):
        circuit = Circuit(2).h(0).t(0).cnot(0, 1).s(0).h(0)
        fused = fuse_single_qubit_runs(circuit)
        assert fused.count("u") == 2
        assert fused.count("cnot") == 1
        assert equivalent_circuits(circuit, fused)

    def test_zyz_emission(self):
        circuit = Circuit(1).h(0).t(0)
        fused = fuse_single_qubit_runs(circuit, emit="zyz")
        assert {g.name for g in fused} <= {"rz", "ry"}
        assert equivalent_circuits(circuit, fused)

    def test_measure_flushes_run(self):
        circuit = Circuit(1).h(0).measure(0)
        fused = fuse_single_qubit_runs(circuit)
        assert [g.name for g in fused] == ["u", "measure"]

    def test_unknown_emit_mode(self):
        with pytest.raises(ValueError):
            fuse_single_qubit_runs(Circuit(1), emit="xyz")


class TestRemoveIdentities:
    def test_drops_i_and_zero_rotations(self):
        circuit = Circuit(1).i(0).rz(0.0, 0).h(0)
        assert remove_identities(circuit).size() == 1

    def test_keeps_nontrivial(self):
        circuit = Circuit(1).rz(0.1, 0)
        assert remove_identities(circuit).size() == 1


class TestOptimizeCircuitDriver:
    def test_never_grows(self):
        from repro.workloads import random_circuit

        for seed in range(5):
            circuit = random_circuit(4, 30, seed=seed)
            assert optimize_circuit(circuit).size() <= circuit.size()

    def test_preserves_semantics_on_random_circuits(self):
        from repro.workloads import random_circuit

        for seed in range(8):
            circuit = random_circuit(4, 25, seed=seed)
            optimised = optimize_circuit(circuit)
            assert equivalent_circuits(circuit, optimised), seed

    def test_preserves_semantics_with_fusion(self):
        from repro.workloads import random_circuit

        for seed in range(5):
            circuit = random_circuit(4, 25, seed=seed, two_qubit_fraction=0.3)
            optimised = optimize_circuit(circuit, fuse=True)
            assert equivalent_circuits(circuit, optimised), seed

    def test_cleans_direction_flip_hadamards(self):
        """The classic post-mapping win: decomposition H meets flip H."""
        circuit = Circuit(2).h(0).h(1).cnot(1, 0).h(0).h(1).h(0).h(1).cnot(1, 0).h(0).h(1)
        optimised = optimize_circuit(circuit)
        assert optimised.size() == 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_random_seeds(self, seed):
        from repro.workloads import random_circuit

        circuit = random_circuit(3, 15, seed=seed)
        optimised = optimize_circuit(circuit, fuse=True)
        assert equivalent_circuits(circuit, optimised)
        assert optimised.size() <= circuit.size()
