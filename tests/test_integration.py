"""End-to-end integration: the complete Fig. 2 path on every device family.

For each machine description: OpenQASM text in -> parse -> compile
(place, route, fix directions, lower, optimise, schedule) -> conformance
-> semantic equivalence -> cQASM out -> (where constraints exist)
control-signal lowering.  One parametrized test per device keeps
regressions in any stage loud.
"""

import pytest

from repro import compile_circuit, equivalent_mapped, get_device, parse_qasm
from repro.pulse import lower_to_pulses
from repro.qasm import parse_cqasm, schedule_to_cqasm, to_openqasm
from repro.workloads import random_circuit

DEVICES = [
    ("ibm_qx4", {}),
    ("ibm_qx5", {}),
    ("surface7", {}),
    ("surface17", {}),
    ("linear", {"num_qubits": 6}),
    ("ring", {"num_qubits": 6}),
    ("grid", {"rows": 2, "cols": 3}),
    ("all_to_all", {"num_qubits": 5}),
    ("dots", {"rows": 2, "cols": 3}),
    ("iontrap", {"num_qubits": 5}),
    ("photonic", {"num_qubits": 5}),
]


@pytest.mark.parametrize("name,params", DEVICES)
def test_full_flow_on_device(name, params):
    device = get_device(name, **params)
    width = min(device.num_qubits, 5)
    circuit = random_circuit(width, 14, seed=hash(name) % 997)

    # Round-trip through the QASM front end first (Fig. 2 input).
    circuit = parse_qasm(to_openqasm(circuit))

    result = compile_circuit(
        circuit,
        device,
        placer="greedy",
        router="sabre",
        optimize=True,
        schedule="constraints",
    )
    assert device.conforms(result.native), device.validate_circuit(result.native)[:3]
    assert result.schedule is not None
    assert result.schedule.validate() == []
    assert equivalent_mapped(
        circuit, result.native, result.routed.initial, result.routed.final
    )

    # Fig. 2 outputs: scheduled cQASM bundles...
    text = schedule_to_cqasm(result.schedule)
    back = parse_cqasm(text)
    assert back.size() == result.native.size()

    # ...and, where control electronics are modelled, the channelised
    # pulse program.
    if device.constraints is not None:
        program = lower_to_pulses(result.schedule, device)
        assert program.validate() == []
        assert program.latency == result.schedule.latency


@pytest.mark.parametrize("router", ["naive", "astar", "latency"])
def test_full_flow_alternate_routers(router):
    device = get_device("surface17")
    circuit = random_circuit(5, 14, seed=31)
    result = compile_circuit(
        circuit, device, placer="assignment", router=router,
        optimize=True, schedule="constraints",
    )
    assert device.conforms(result.native)
    assert equivalent_mapped(
        circuit, result.native, result.routed.initial, result.routed.final
    )
    program = lower_to_pulses(result.schedule, device)
    assert program.validate() == []


def test_full_flow_with_measurements():
    device = get_device("surface17")
    circuit = random_circuit(5, 10, seed=7)
    circuit.measure_all()
    circuit = parse_qasm(to_openqasm(circuit))
    result = compile_circuit(
        circuit, device, placer="greedy", schedule="constraints"
    )
    assert device.conforms(result.native)
    assert result.native.count("measure") == 5
    program = lower_to_pulses(result.schedule, device)
    readout = [e for e in program if e.channel.kind == "readout"]
    assert readout
