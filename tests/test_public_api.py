"""Public API surface checks: exports exist, are documented, and agree."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.commutation",
    "repro.core.pipeline",
    "repro.core.snapshot",
    "repro.decompose",
    "repro.devices",
    "repro.explore",
    "repro.mapping",
    "repro.mapping.routing",
    "repro.metrics",
    "repro.optimize",
    "repro.pulse",
    "repro.qasm",
    "repro.qec",
    "repro.sim",
    "repro.verify",
    "repro.viz",
    "repro.workloads",
]


class TestExports:
    @pytest.mark.parametrize("module_name", PACKAGES)
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", PACKAGES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_covers_the_pipeline(self):
        for name in (
            "Circuit", "Device", "get_device", "compile_circuit", "qmap",
            "route", "simulate", "equivalent_mapped", "parse_qasm",
            "NoiseModel",
        ):
            assert name in repro.__all__


class TestRegistriesAgree:
    def test_router_registry_matches_functions(self):
        from repro.mapping.routing import ROUTERS

        for name, fn in ROUTERS.items():
            assert callable(fn)
            assert fn.__name__ == f"route_{name}" or name in fn.__name__

    def test_placer_registry_matches_functions(self):
        from repro.mapping.placement import PLACERS

        for name, fn in PLACERS.items():
            assert callable(fn)
            assert name.split("_")[0] in fn.__name__

    def test_device_registry_builds_everything(self):
        from repro.devices import available_devices, get_device

        params = {
            "linear": {"num_qubits": 3},
            "ring": {"num_qubits": 4},
            "grid": {"rows": 2, "cols": 2},
            "all_to_all": {"num_qubits": 3},
            "heavy_hex": {"rows": 2, "row_len": 5},
            "dots": {"rows": 2, "cols": 2},
            "iontrap": {"num_qubits": 3},
            "photonic": {"num_qubits": 3},
        }
        for name in available_devices():
            device = get_device(name, **params.get(name, {}))
            assert device.num_qubits > 0

    def test_workload_registry_builds_everything(self):
        from repro.workloads import WORKLOADS, get_workload

        for name in WORKLOADS:
            assert get_workload(name).size() > 0
